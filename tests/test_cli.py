"""End-to-end tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture
def dataset_file(tmp_path):
    path = str(tmp_path / "d.npz")
    code = main(
        [
            "generate", "--function", "2", "--records", "800",
            "--seed", "3", "-o", path,
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_npz(self, dataset_file):
        assert os.path.exists(dataset_file)

    def test_csv(self, tmp_path, capsys):
        path = str(tmp_path / "d.csv")
        assert main(["generate", "--records", "50", "-o", path]) == 0
        assert os.path.exists(path)
        assert os.path.exists(path + ".schema.json")
        assert "F2-A9-D50" in capsys.readouterr().out


class TestBuild:
    def test_build_and_save(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        code = main(
            [
                "build", "-i", dataset_file, "--algorithm", "mwk",
                "--procs", "2", "-o", tree_path,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mwk on 2 processor(s)" in out
        assert "training accuracy" in out
        data = json.load(open(tree_path))
        assert data["format"] == "repro-decision-tree"

    def test_prune_flag(self, dataset_file, capsys):
        assert main(["build", "-i", dataset_file, "--prune"]) == 0
        assert "pruned" in capsys.readouterr().out

    def test_render_flag(self, dataset_file, capsys):
        assert main(["build", "-i", dataset_file, "--render"]) == 0
        out = capsys.readouterr().out
        assert "<" in out  # a split test was rendered

    def test_every_algorithm_runs(self, dataset_file):
        for algorithm in ("serial", "basic", "fwk", "mwk", "subtree",
                          "recordpar"):
            assert main(
                ["build", "-i", dataset_file, "--algorithm", algorithm,
                 "--procs", "2"]
            ) == 0

    def test_trace_out_writes_valid_chrome_trace(self, dataset_file,
                                                 tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        code = main(
            ["build", "-i", dataset_file, "--algorithm", "basic",
             "--procs", "4", "--trace-out", trace_path]
        )
        assert code == 0
        assert "Chrome trace" in capsys.readouterr().out
        doc = json.load(open(trace_path))
        events = doc["traceEvents"]
        assert events
        for event in events:
            for key in ("ts", "dur", "ph", "pid", "tid", "name"):
                assert key in event
        assert {"E", "W", "S"} <= {e["name"] for e in events}

    def test_metrics_out_unifies_counters(self, dataset_file, tmp_path):
        metrics_path = str(tmp_path / "metrics.prom")
        code = main(
            ["build", "-i", dataset_file, "--algorithm", "mwk",
             "--procs", "2", "--metrics-out", metrics_path]
        )
        assert code == 0
        text = open(metrics_path).read()
        assert "smp_seconds_total" in text
        assert "disk_busy_seconds_total" in text
        assert "storage_reads_total" in text
        assert "mwk_gate_waits_total" in text
        assert "phase_seconds_bucket" in text


class TestBuildProcs:
    def test_exact_matches_virtual(self, dataset_file, tmp_path, capsys):
        """`--runtime procs --merge exact` saves the same tree as virtual."""
        virtual_path = str(tmp_path / "virtual.json")
        procs_path = str(tmp_path / "procs.json")
        assert main(
            ["build", "-i", dataset_file, "--algorithm", "serial",
             "-o", virtual_path]
        ) == 0
        code = main(
            ["build", "-i", dataset_file, "--runtime", "procs",
             "--shards", "2", "--merge", "exact", "-o", procs_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard-exact on 2 processor(s)" in out
        assert "shards: 2 worker(s)" in out
        assert "bytes exchanged" in out
        virtual = json.load(open(virtual_path))
        procs = json.load(open(procs_path))
        assert virtual["nodes"] == procs["nodes"]

    def test_vote_merge(self, dataset_file, capsys):
        code = main(
            ["build", "-i", dataset_file, "--runtime", "procs",
             "--shards", "2", "--merge", "vote", "--vote-k", "2"]
        )
        assert code == 0
        assert "merge=vote" in capsys.readouterr().out

    def test_timeline_procs(self, dataset_file, capsys):
        code = main(
            ["timeline", "-i", dataset_file, "--runtime", "procs",
             "--procs", "2", "--width", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard-exact on 2 processor(s)" in out
        # Coordinator lane plus one lane per shard.
        assert "P0" in out and "P1" in out and "P2" in out


class TestClassify:
    def test_round_trip(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main(["build", "-i", dataset_file, "-o", tree_path])
        capsys.readouterr()
        code = main(["classify", "-i", dataset_file, "--tree", tree_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "actual" in out


class TestPredictCommand:
    @pytest.fixture
    def tree_file(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main(["build", "-i", dataset_file, "-o", tree_path])
        capsys.readouterr()
        return tree_path

    def test_predict_reports_throughput(self, dataset_file, tree_file, capsys):
        code = main(
            ["predict", "--model", tree_file, "--data", dataset_file,
             "--batch-size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "800 rows" in out
        assert "rows/s" in out
        assert "label agreement" in out

    def test_predict_writes_class_names(
        self, dataset_file, tree_file, tmp_path, capsys
    ):
        out_path = str(tmp_path / "labels.txt")
        code = main(
            ["predict", "--model", tree_file, "--data", dataset_file,
             "-o", out_path]
        )
        assert code == 0
        lines = open(out_path).read().splitlines()
        assert len(lines) == 800
        assert set(lines) <= {"A", "B"}

    def test_predict_multiworker(self, dataset_file, tree_file, capsys):
        code = main(
            ["predict", "--model", tree_file, "--data", dataset_file,
             "--batch-size", "128", "--workers", "2"]
        )
        assert code == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_serve_jsonl_loop(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        import io

        from repro.data.io import load_dataset_npz

        dataset = load_dataset_npz(dataset_file)
        row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
        batch = {
            k: [float(v[0]), float(v[1])]
            for k, v in dataset.columns.items()
        }
        incomplete = {"salary": 1.0}
        requests = "\n".join(
            json.dumps(r) for r in (row, batch, incomplete)
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(requests + "\n"))
        code = main(["serve", "--model", tree_file])
        assert code == 0
        captured = capsys.readouterr()
        replies = [json.loads(line) for line in captured.out.splitlines()]
        assert len(replies) == 3
        assert replies[0]["class"] in ("A", "B")
        assert len(replies[1]["classes"]) == 2
        assert "error" in replies[2]
        assert "served 2 request(s)" in captured.err


class TestForestCli:
    @pytest.fixture
    def forest_file(self, dataset_file, tmp_path, capsys):
        path = str(tmp_path / "forest.json")
        code = main(
            ["build", "-i", dataset_file, "--forest", "4",
             "--subsample", "0.8", "--feature-frac", "0.75",
             "--forest-seed", "7", "-o", path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forest of 4 tree(s)" in out
        assert "training accuracy" in out
        assert "(v3 container)" in out
        return path

    def test_build_writes_v3_container(self, forest_file):
        doc = json.load(open(forest_file))
        assert doc["version"] == 3
        assert doc["kind"] == "forest"
        assert doc["n_trees"] == 4

    def test_build_forest_deterministic(self, dataset_file, tmp_path,
                                        capsys):
        paths = [str(tmp_path / f"f{i}.json") for i in (1, 2)]
        for path, workers in zip(paths, ("1", "3")):
            assert main(
                ["build", "-i", dataset_file, "--forest", "3",
                 "--forest-seed", "9", "--forest-workers", workers,
                 "-o", path]
            ) == 0
        capsys.readouterr()
        assert json.load(open(paths[0])) == json.load(open(paths[1]))

    def test_classify_accepts_forest(self, dataset_file, forest_file,
                                     capsys):
        code = main(
            ["classify", "-i", dataset_file, "--tree", forest_file]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    def test_predict_accepts_forest(self, dataset_file, forest_file,
                                    capsys):
        code = main(
            ["predict", "--model", forest_file, "--data", dataset_file,
             "--batch-size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "800 rows" in out
        assert "label agreement" in out

    def test_serve_accepts_forest(self, dataset_file, forest_file, capsys,
                                  monkeypatch):
        import io

        from repro.data.io import load_dataset_npz

        dataset = load_dataset_npz(dataset_file)
        row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(row) + "\n"))
        assert main(["serve", "--model", forest_file]) == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["class"] in ("A", "B")

    def test_oracle_on_forest_is_a_clean_error(self, dataset_file,
                                               forest_file, capsys):
        """Satellite fix: `predict --oracle` on a v3 forest must explain
        itself instead of dumping a traceback."""
        code = main(
            ["predict", "--model", forest_file, "--data", dataset_file,
             "--oracle"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "v3 forest container" in captured.err
        assert "Traceback" not in captured.err

    def test_oracle_on_tree_verifies(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main(["build", "-i", dataset_file, "-o", tree_path])
        capsys.readouterr()
        code = main(
            ["predict", "--model", tree_path, "--data", dataset_file,
             "--oracle"]
        )
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out


class TestCrossValidate:
    def test_runs(self, dataset_file, capsys):
        code = main(
            ["cross-validate", "-i", dataset_file, "--folds", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3-fold CV" in out
        assert "accuracy" in out

    def test_no_prune(self, dataset_file, capsys):
        assert main(
            ["cross-validate", "-i", dataset_file, "--folds", "2",
             "--no-prune"]
        ) == 0


class TestTimeline:
    def test_renders(self, dataset_file, capsys):
        code = main(
            ["timeline", "-i", dataset_file, "--procs", "2",
             "--width", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "P0" in out and "P1" in out
        assert "busy" in out

    def test_chrome_format(self, dataset_file, tmp_path, capsys):
        out_path = str(tmp_path / "tl.json")
        code = main(
            ["timeline", "-i", dataset_file, "--procs", "2",
             "--format", "chrome", "-o", out_path]
        )
        assert code == 0
        assert "Chrome trace" in capsys.readouterr().out
        doc = json.load(open(out_path))
        assert doc["otherData"]["algorithm"] == "mwk"
        assert any(e["name"] == "E" for e in doc["traceEvents"])

    def test_jsonl_format(self, dataset_file, tmp_path, capsys):
        out_path = str(tmp_path / "tl.jsonl")
        code = main(
            ["timeline", "-i", dataset_file, "--procs", "2",
             "--format", "jsonl", "-o", out_path]
        )
        assert code == 0
        lines = open(out_path).read().splitlines()
        assert "JSONL events" in capsys.readouterr().out
        assert lines
        types = {json.loads(line)["type"] for line in lines}
        assert {"span", "interval"} <= types


class TestBenchmarkAndInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "mwk" in out and "machine-b" in out

    def test_unknown_experiment(self, capsys):
        assert main(["benchmark", "--experiment", "fig99"]) == 2

    def test_table1_small(self, capsys, monkeypatch):
        assert main(
            ["benchmark", "--experiment", "table1", "--records", "400"]
        ) == 0
        out = capsys.readouterr().out
        assert "F2-A32" in out and "F7-A64" in out


class TestTelemetry:
    @pytest.fixture
    def tree_file(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main(["build", "-i", dataset_file, "-o", tree_path])
        capsys.readouterr()
        return tree_path

    def test_serve_writes_chrome_trace(
        self, dataset_file, tree_file, tmp_path, capsys, monkeypatch
    ):
        import io

        from repro.data.io import load_dataset_npz

        dataset = load_dataset_npz(dataset_file)
        rows = "\n".join(
            json.dumps({k: float(v) for k, v in dataset.tuple_at(i).items()})
            for i in range(5)
        )
        trace_path = str(tmp_path / "serve-trace.json")
        monkeypatch.setattr("sys.stdin", io.StringIO(rows + "\n"))
        code = main(
            ["serve", "--model", tree_file, "--trace-out", trace_path]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert f"chrome trace -> {trace_path}" in captured.err
        doc = json.load(open(trace_path))
        requests = [
            e for e in doc["traceEvents"] if e.get("name") == "request"
        ]
        assert len(requests) == 5
        assert all("trace_id" in e["args"] for e in requests)

    def test_serve_with_telemetry_port_and_top(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        import queue
        import socket
        import threading
        import urllib.request

        from repro.data.io import load_dataset_npz

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        class QueueStdin:
            def __init__(self):
                self.lines = queue.Queue()

            def __iter__(self):
                return self

            def __next__(self):
                line = self.lines.get()
                if line is None:
                    raise StopIteration
                return line

        stdin = QueueStdin()
        monkeypatch.setattr("sys.stdin", stdin)
        codes = []
        server_thread = threading.Thread(
            target=lambda: codes.append(
                main(
                    ["serve", "--model", tree_file,
                     "--telemetry-port", str(port)]
                )
            )
        )
        server_thread.start()
        try:
            dataset = load_dataset_npz(dataset_file)
            row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
            stdin.lines.put(json.dumps(row) + "\n")
            url = f"http://127.0.0.1:{port}"
            deadline = 50
            for attempt in range(deadline):
                try:
                    with urllib.request.urlopen(
                        url + "/healthz", timeout=5
                    ) as resp:
                        assert json.loads(resp.read())["status"] == "ok"
                    break
                except OSError:
                    if attempt == deadline - 1:
                        raise
                    import time

                    time.sleep(0.1)
            with urllib.request.urlopen(url + "/metrics", timeout=5) as resp:
                assert b"engine_requests_total" in resp.read()
            assert main(["top", "--url", url, "--once"]) == 0
        finally:
            stdin.lines.put(None)
            server_thread.join(timeout=30)
        assert codes == [0]
        captured = capsys.readouterr()
        assert f"telemetry: http://127.0.0.1:{port}" in captured.err
        assert "repro top" in captured.out
        assert "served 1 request(s)" in captured.err

    def test_top_unreachable_url_fails(self, capsys):
        code = main(
            ["top", "--url", "http://127.0.0.1:1", "--once",
             "--timeout", "1"]
        )
        assert code == 1
        assert "cannot fetch" in capsys.readouterr().err

    def test_serve_reports_rejection_breakdown(
        self, tree_file, capsys, monkeypatch
    ):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO('{"salary": 1.0}\n'))
        code = main(["serve", "--model", tree_file])
        assert code == 0
        captured = capsys.readouterr()
        assert "1 rejected (missing-attribute: 1)" in captured.err


class TestServeTier:
    """The async serving tier behind `repro serve` and its bug fixes."""

    @pytest.fixture
    def tree_file(self, dataset_file, tmp_path, capsys):
        tree_path = str(tmp_path / "tree.json")
        main(["build", "-i", dataset_file, "-o", tree_path])
        capsys.readouterr()
        return tree_path

    def test_timeout_cancels_and_accounting_matches(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        """Regression: a timed-out request must not count as served.

        Before the fix the client got an error reply while the engine
        still processed and counted the request as completed — the
        `served N` exit line and engine accounting disagreed.
        """
        import io
        import time

        from repro.classify.compiled import CompiledTree
        from repro.data.io import load_dataset_npz

        original = CompiledTree.predict

        def slow(self, columns, **kwargs):
            time.sleep(0.6)
            return original(self, columns, **kwargs)

        monkeypatch.setattr(CompiledTree, "predict", slow)
        dataset = load_dataset_npz(dataset_file)
        row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(row) + "\n"))
        code = main(
            ["serve", "--model", tree_file, "--timeout", "0.1"]
        )
        assert code == 0
        captured = capsys.readouterr()
        reply = json.loads(captured.out.splitlines()[0])
        assert reply["reason"] == "timeout"
        assert "cancelled" in reply["error"]
        # Engine accounting agrees with the exit line: nothing served,
        # one request cancelled, zero completed.
        assert "served 0 request(s)" in captured.err
        assert "1 cancelled" in captured.err

    def test_zero_row_batch_reply_shape(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        import io

        from repro.data.io import load_dataset_npz

        dataset = load_dataset_npz(dataset_file)
        empty = {k: [] for k in dataset.columns}
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(empty) + "\n")
        )
        code = main(["serve", "--model", tree_file])
        assert code == 0
        captured = capsys.readouterr()
        reply = json.loads(captured.out.splitlines()[0])
        assert reply["classes"] == []
        assert reply["class_indices"] == []
        assert "error" not in reply
        assert "served 1 request(s)" in captured.err

    def test_replies_tagged_with_model_and_version(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        import io

        from repro.data.io import load_dataset_npz

        dataset = load_dataset_npz(dataset_file)
        row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
        monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(row) + "\n"))
        code = main(
            ["serve", "--model", tree_file, "--model-version", "2024-06"]
        )
        assert code == 0
        reply = json.loads(capsys.readouterr().out.splitlines()[0])
        assert reply["model"] == tree_file
        assert reply["version"] == "2024-06"

    def test_no_stdin_requires_port(self, tree_file, capsys):
        code = main(["serve", "--model", tree_file, "--no-stdin"])
        assert code == 2
        assert "--no-stdin requires --port" in capsys.readouterr().err

    def test_port_serves_sockets_alongside_stdin(
        self, dataset_file, tree_file, capsys, monkeypatch
    ):
        import queue
        import socket
        import threading

        from repro.data.io import load_dataset_npz

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        class QueueStdin:
            def __init__(self):
                self.lines = queue.Queue()

            def __iter__(self):
                return self

            def __next__(self):
                line = self.lines.get()
                if line is None:
                    raise StopIteration
                return line

        stdin = QueueStdin()
        monkeypatch.setattr("sys.stdin", stdin)
        codes = []
        server_thread = threading.Thread(
            target=lambda: codes.append(
                main(["serve", "--model", tree_file, "--port", str(port)])
            )
        )
        server_thread.start()
        try:
            dataset = load_dataset_npz(dataset_file)
            row = {k: float(v) for k, v in dataset.tuple_at(0).items()}
            # stdin and the socket are clients of the same registry.
            stdin.lines.put(json.dumps(row) + "\n")
            deadline = 50
            for attempt in range(deadline):
                try:
                    sock = socket.create_connection(
                        ("127.0.0.1", port), timeout=5
                    )
                    break
                except OSError:
                    if attempt == deadline - 1:
                        raise
                    import time

                    time.sleep(0.1)
            f = sock.makefile("rwb")
            try:
                f.write((json.dumps(row) + "\n").encode())
                f.flush()
                reply = json.loads(f.readline())
            finally:
                f.close()
                sock.close()
        finally:
            stdin.lines.put(None)
            server_thread.join(timeout=30)
        assert codes == [0]
        assert reply["class"] in ("A", "B")
        captured = capsys.readouterr()
        assert f"serving on 127.0.0.1:{port}" in captured.err
        # stdin counted 1 served; the socket request flowed through the
        # same engines (2 completed in total, visible in row count).
        assert "served 1 request(s), 2 row(s)" in captured.err
