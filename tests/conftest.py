"""Shared fixtures: small deterministic datasets and machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.schema import Attribute, AttributeKind, Schema
from repro.smp.machine import machine_a, machine_b


@pytest.fixture(scope="session")
def small_f2():
    """A small simple-function dataset (fast, small tree)."""
    return generate_dataset(
        DatasetSpec(function=2, n_attributes=9, n_records=600, seed=3)
    )


@pytest.fixture(scope="session")
def small_f7():
    """A small complex-function dataset (deeper, bushier tree)."""
    return generate_dataset(
        DatasetSpec(function=7, n_attributes=9, n_records=600, seed=3)
    )


@pytest.fixture(scope="session")
def medium_f2():
    return generate_dataset(
        DatasetSpec(function=2, n_attributes=12, n_records=3000, seed=11)
    )


@pytest.fixture
def tiny_schema():
    return Schema(
        [
            Attribute("age", AttributeKind.CONTINUOUS),
            Attribute("car", AttributeKind.CATEGORICAL, 3),
        ],
        class_names=("yes", "no"),
    )


@pytest.fixture
def car_insurance():
    """The paper's Figure 1 training set (six tuples, two attributes)."""
    from repro.data.dataset import Dataset

    schema = Schema(
        [
            Attribute("age", AttributeKind.CONTINUOUS),
            Attribute("car_type", AttributeKind.CATEGORICAL, 3),
        ],
        class_names=("high", "low"),
    )
    # car_type codes: 0 = family, 1 = sports, 2 = truck.
    columns = {
        "age": np.array([23.0, 17.0, 43.0, 68.0, 32.0, 20.0]),
        "car_type": np.array([0, 1, 1, 0, 2, 0], dtype=np.int64),
    }
    labels = np.array([0, 0, 0, 1, 1, 0], dtype=np.int32)
    return Dataset(schema, columns, labels, name="car-insurance")


@pytest.fixture
def mach_a():
    return machine_a(4)


@pytest.fixture
def mach_b():
    return machine_b(8)
