"""Zero-downtime hot-swap: version consistency, no dropped futures."""

import threading

import numpy as np
import pytest

from repro.classify.engine import EngineClosedError
from repro.classify.predict import predict
from repro.core.builder import build_classifier
from repro.serve import ModelRegistry, ShedError


@pytest.fixture
def model(small_f2):
    return build_classifier(small_f2).tree


@pytest.fixture
def model_b(small_f7):
    # Same schema, different function: the two versions genuinely
    # disagree on some rows, so a torn read would be detectable.
    return build_classifier(small_f7).tree


class TestSwap:
    def test_swap_switches_version_and_drains_old(self, model, model_b,
                                                  small_f2):
        with ModelRegistry() as registry:
            old = registry.add("alpha", model, version="v1")
            new = registry.swap("alpha", model_b, version="v2")
            assert registry.resolve("alpha") is new
            assert new.version == "v2"
            assert new.generation == 2
            assert old.engine.closed  # drained, workers returned
            entry, request = registry.submit(small_f2.columns)
            got = request.result(timeout=30)
            assert entry is new
        np.testing.assert_array_equal(got, predict(model_b, small_f2))
        assert registry.describe()["swaps"] == 1

    def test_swap_inherits_config_unless_overridden(self, model, model_b):
        with ModelRegistry() as registry:
            registry.add(
                "alpha", model, workers=2, batch_size=128, max_pending=9
            )
            entry = registry.swap("alpha", model_b)
            assert entry.engine.n_workers == 2
            assert entry.engine.batch_size == 128
            assert entry.max_pending == 9
            resized = registry.swap("alpha", model, max_pending=3)
            assert resized.max_pending == 3
            assert resized.engine.n_workers == 2

    def test_swap_unknown_name_rejected(self, model):
        from repro.serve import UnknownModelError

        with ModelRegistry() as registry:
            registry.add("alpha", model)
            with pytest.raises(UnknownModelError):
                registry.swap("ghost", model)

    def test_retired_traces_still_visible(self, model, model_b, small_f2):
        with ModelRegistry() as registry:
            registry.add("alpha", model, version="v1")
            _, request = registry.submit(small_f2.columns)
            request.result(timeout=30)
            registry.swap("alpha", model_b, version="v2")
            _, request = registry.submit(small_f2.columns)
            request.result(timeout=30)
            traces = registry.all_traces()
        assert len(traces) == 2
        assert traces[0].submit_ts <= traces[1].submit_ts


class TestSwapUnderLoad:
    def test_inflight_requests_consistent_with_exactly_one_version(
        self, model, model_b, small_f2
    ):
        """The differential gate: swap mid-traffic, check every reply.

        Each request's reply must equal what exactly one of the two
        versions predicts for its rows — a torn read (partially
        swapped state) or a dropped future fails loudly.
        """
        want_v1 = predict(model, small_f2)
        want_v2 = predict(model_b, small_f2)
        n = small_f2.n_records
        registry = ModelRegistry()
        registry.add("alpha", model, version="v1", workers=2,
                     max_pending=4096)
        stop = threading.Event()
        failures = []
        counts = {"v1": 0, "v2": 0}
        lock = threading.Lock()

        def client(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                lo = int(rng.integers(0, n - 16))
                hi = lo + int(rng.integers(1, 16))
                cols = {
                    k: v[lo:hi] for k, v in small_f2.columns.items()
                }
                try:
                    entry, request = registry.submit(cols)
                    got = request.result(timeout=30)
                except (EngineClosedError, ShedError) as exc:
                    with lock:
                        failures.append(f"request refused: {exc!r}")
                    return
                matches_v1 = np.array_equal(got, want_v1[lo:hi])
                matches_v2 = np.array_equal(got, want_v2[lo:hi])
                expected = {
                    "v1": matches_v1, "v2": matches_v2
                }[entry.version]
                if not expected:
                    with lock:
                        failures.append(
                            f"reply from {entry.version} does not match "
                            f"that version's model for rows {lo}:{hi}"
                        )
                    return
                with lock:
                    counts[entry.version] += 1

        threads = [
            threading.Thread(target=client, args=(seed,))
            for seed in range(6)
        ]
        for t in threads:
            t.start()
        # Let v1 serve some traffic, swap, let v2 serve some traffic.
        while True:
            with lock:
                if counts["v1"] >= 50:
                    break
        registry.swap("alpha", model_b, version="v2")
        while True:
            with lock:
                if counts["v2"] >= 50 or failures:
                    break
        stop.set()
        for t in threads:
            t.join()
        registry.close()
        assert not failures
        assert counts["v1"] >= 50 and counts["v2"] >= 50
        acct = registry.accounting()
        assert acct["pending"] == 0
        assert acct["arrivals"] == (
            acct["admitted"] + acct["shed"] + acct["rejected"]
        )
        assert acct["shed"] == 0  # max_pending ample: nothing shed
        assert acct["admitted"] == counts["v1"] + counts["v2"]

    def test_no_dropped_futures_across_repeated_swaps(self, model, model_b,
                                                      small_f2):
        """Every admitted request resolves even while swaps churn."""
        registry = ModelRegistry()
        registry.add("alpha", model, version="v1", workers=1,
                     max_pending=4096)
        row = {k: v[:4] for k, v in small_f2.columns.items()}
        stop = threading.Event()
        resolved = []
        failures = []

        def client():
            while not stop.is_set():
                try:
                    _, request = registry.submit(row)
                    request.result(timeout=30)
                    resolved.append(1)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        trees = (model_b, model)
        for i in range(6):
            registry.swap("alpha", trees[i % 2], version=f"v{i + 2}")
        stop.set()
        for t in threads:
            t.join()
        registry.close()
        assert not failures
        assert len(resolved) > 0
        acct = registry.accounting()
        assert acct["pending"] == 0
        assert acct["admitted"] == len(resolved)
        assert registry.describe()["swaps"] == 6
