"""ModelRegistry: routing, admission control, accounting, lifecycle."""

import threading

import numpy as np
import pytest

from repro.classify.engine import EngineClosedError
from repro.core.builder import build_classifier
from repro.serve import ModelRegistry, ShedError, UnknownModelError


@pytest.fixture
def model(small_f2):
    return build_classifier(small_f2).tree


@pytest.fixture
def model_b(small_f7):
    return build_classifier(small_f7).tree


class TestRouting:
    def test_first_model_becomes_default(self, model, small_f2):
        with ModelRegistry() as registry:
            registry.add("alpha", model, version="v1")
            entry, request = registry.submit(small_f2.columns)
            request.result(timeout=30)
            assert entry.name == "alpha"
            assert entry.version == "v1"
            assert registry.default_model == "alpha"

    def test_submit_by_name(self, model, model_b, small_f2):
        with ModelRegistry() as registry:
            registry.add("alpha", model)
            registry.add("beta", model_b)
            entry, request = registry.submit(small_f2.columns, model="beta")
            request.result(timeout=30)
            assert entry.name == "beta"

    def test_unknown_model_rejected(self, model, small_f2):
        with ModelRegistry() as registry:
            registry.add("alpha", model)
            with pytest.raises(UnknownModelError) as exc:
                registry.submit(small_f2.columns, model="ghost")
            # KeyError repr-quoting must not leak into the message.
            assert str(exc.value).startswith("unknown model 'ghost'")

    def test_duplicate_add_rejected(self, model):
        with ModelRegistry() as registry:
            registry.add("alpha", model)
            with pytest.raises(ValueError, match="already served"):
                registry.add("alpha", model)

    def test_default_version_is_generation(self, model):
        with ModelRegistry() as registry:
            entry = registry.add("alpha", model)
            assert entry.version == "gen1"
            assert entry.generation == 1

    def test_closed_registry_rejects_submits(self, model, small_f2):
        registry = ModelRegistry()
        registry.add("alpha", model)
        registry.close()
        with pytest.raises(EngineClosedError):
            registry.submit(small_f2.columns)
        assert registry.closed

    def test_describe_document(self, model, model_b):
        with ModelRegistry() as registry:
            registry.add("alpha", model, version="v1", max_pending=7)
            registry.add("beta", model_b)
            doc = registry.describe()
        assert doc["default"] == "alpha"
        assert doc["swaps"] == 0
        by_name = {m["model"]: m for m in doc["models"]}
        assert by_name["alpha"]["version"] == "v1"
        assert by_name["alpha"]["max_pending"] == 7
        assert by_name["beta"]["n_nodes"] > 0

    def test_health_keeps_engine_shape_for_top(self, model):
        with ModelRegistry() as registry:
            registry.add("alpha", model, version="v1")
            doc = registry.health()
            # `repro top` reads the single-engine keys off the default
            # model; the tier adds status + per-model breakdown.
            assert doc["status"] == "ok"
            assert doc["model"] == "alpha"
            assert doc["version"] == "v1"
            assert "queue_depth" in doc
            assert doc["models"]["alpha"]["status"] == "ok"
        assert registry.health()["status"] == "closed"


class TestAdmissionControl:
    def test_shed_past_max_pending(self, model, small_f2, monkeypatch):
        registry = ModelRegistry()
        entry = registry.add("alpha", model, workers=1, max_pending=2)
        started = threading.Event()
        release = threading.Event()
        original = entry.engine.compiled.predict

        def gated(columns):
            started.set()
            assert release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(entry.engine.compiled, "predict", gated)
        row = {k: v[:4] for k, v in small_f2.columns.items()}
        first = entry.submit(row)
        assert started.wait(timeout=30)
        second = entry.submit(row)  # fills the admission window
        with pytest.raises(ShedError) as exc:
            entry.submit(row)
        assert exc.value.model == "alpha"
        assert exc.value.reason == "queue-full"
        release.set()
        first.result(timeout=30)
        second.result(timeout=30)
        registry.close()
        acct = entry.accounting()
        assert acct == {
            "arrivals": 3,
            "admitted": 2,
            "shed": 1,
            "rejected": 0,
            "pending": 0,
            "pending_high_water": 2,
        }
        assert registry.shed_total() == 1

    def test_admission_reopens_after_drain(self, model, small_f2):
        with ModelRegistry() as registry:
            entry = registry.add("alpha", model, max_pending=1)
            row = {k: v[:4] for k, v in small_f2.columns.items()}
            for _ in range(5):  # strictly serial: never sheds
                entry.submit(row).result(timeout=30)
            acct = entry.accounting()
        assert acct["admitted"] == 5
        assert acct["shed"] == 0
        assert acct["pending"] == 0

    def test_malformed_requests_counted_rejected(self, model, small_f2):
        with ModelRegistry() as registry:
            entry = registry.add("alpha", model)
            with pytest.raises(ValueError):
                entry.submit({"nope": 1.0})
            entry.submit(small_f2.columns).result(timeout=30)
            acct = entry.accounting()
        assert acct["arrivals"] == 2
        assert acct["admitted"] == 1
        assert acct["rejected"] == 1
        assert registry.rejections()["missing-attribute"] == 1

    def test_shed_metric_labelled_by_model(self, model, small_f2,
                                           monkeypatch):
        registry = ModelRegistry()
        entry = registry.add("alpha", model, workers=1, max_pending=1)
        started = threading.Event()
        release = threading.Event()
        original = entry.engine.compiled.predict

        def gated(columns):
            started.set()
            assert release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(entry.engine.compiled, "predict", gated)
        row = {k: v[:4] for k, v in small_f2.columns.items()}
        first = entry.submit(row)
        assert started.wait(timeout=30)
        with pytest.raises(ShedError):
            entry.submit(row)
        release.set()
        first.result(timeout=30)
        registry.close()
        values = registry.metrics.values()
        key = 'serve_shed_total{model="alpha",reason="queue-full"}'
        assert values[key] == 1
        assert values['serve_pending_peak{model="alpha"}'] == 1


class TestAccountingInvariants:
    def test_exact_accounting_under_concurrency(self, model, small_f2):
        registry = ModelRegistry()
        registry.add("alpha", model, workers=2, max_pending=8)
        row = {k: v[:4] for k, v in small_f2.columns.items()}
        outcomes = {"ok": 0, "shed": 0}
        lock = threading.Lock()

        def client():
            for _ in range(50):
                try:
                    _, request = registry.submit(row)
                    request.result(timeout=30)
                    with lock:
                        outcomes["ok"] += 1
                except ShedError:
                    with lock:
                        outcomes["shed"] += 1

        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        registry.close()
        acct = registry.accounting()
        assert acct["arrivals"] == 300
        assert acct["arrivals"] == (
            acct["admitted"] + acct["shed"] + acct["rejected"]
        )
        assert acct["pending"] == 0
        assert acct["admitted"] == outcomes["ok"]
        assert acct["shed"] == outcomes["shed"]
        values = registry.metrics.values()
        resolved = sum(
            int(values.get(name, 0))
            for name in (
                "engine_completed_requests_total",
                "engine_errored_requests_total",
                "engine_cancelled_requests_total",
            )
        )
        assert acct["admitted"] == resolved
