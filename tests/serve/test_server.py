"""ServeServer: JSONL-over-TCP and HTTP front-ends over the registry."""

import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.core.serialize import save_model, save_tree
from repro.ensemble import train_forest
from repro.serve import ModelRegistry, ServeServer


@pytest.fixture
def model(small_f2):
    return build_classifier(small_f2).tree


@pytest.fixture
def model_b(small_f7):
    return build_classifier(small_f7).tree


@pytest.fixture
def tier(model):
    registry = ModelRegistry()
    registry.add("alpha", model, version="v1", workers=2)
    server = ServeServer(registry, port=0, timeout=10.0).start()
    try:
        yield registry, server
    finally:
        server.close()
        registry.close()


def _row(model, value=30.0):
    return {name: value for name in model.schema.attribute_names}


def _jsonl_client(server):
    sock = socket.create_connection((server.host, server.port))
    return sock, sock.makefile("rwb")


def _roundtrip(f, obj):
    f.write((json.dumps(obj) + "\n").encode())
    f.flush()
    return json.loads(f.readline())


def _http(server, path, body=None, method=None):
    req = urllib.request.Request(
        f"http://{server.address}{path}",
        data=None if body is None else json.dumps(body).encode(),
        method=method or ("POST" if body is not None else "GET"),
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.loads(resp.read())


class TestJsonl:
    def test_scalar_batch_and_empty_on_one_connection(self, tier, model,
                                                      small_f2):
        _, server = tier
        sock, f = _jsonl_client(server)
        try:
            reply = _roundtrip(f, _row(model))
            assert set(reply) == {
                "class", "class_index", "model", "version"
            }
            assert reply["model"] == "alpha"
            assert reply["version"] == "v1"
            batch = {
                k: v[:5].tolist() for k, v in small_f2.columns.items()
            }
            reply = _roundtrip(f, batch)
            assert len(reply["classes"]) == 5
            assert len(reply["class_indices"]) == 5
            empty = {k: [] for k in small_f2.columns}
            reply = _roundtrip(f, empty)
            assert reply["classes"] == []
            assert reply["class_indices"] == []
            assert "error" not in reply
        finally:
            f.close()
            sock.close()

    def test_error_replies_keep_connection_alive(self, tier, model):
        _, server = tier
        sock, f = _jsonl_client(server)
        try:
            reply = _roundtrip(f, {"bogus": 1.0})
            assert reply["reason"] == "invalid"
            assert "error" in reply
            reply = _roundtrip(f, {"data": _row(model), "model": "ghost"})
            assert reply["reason"] == "unknown-model"
            f.write(b"this is not json\n")
            f.flush()
            reply = json.loads(f.readline())
            assert reply["reason"] == "invalid"
            # The connection survived all three failures.
            reply = _roundtrip(f, _row(model))
            assert "class" in reply
        finally:
            f.close()
            sock.close()

    def test_pipelined_ids_match_replies(self, tier, model, small_f2):
        _, server = tier
        sock, f = _jsonl_client(server)
        try:
            n = 20
            for i in range(n):
                start = i % (small_f2.n_records - 1)
                data = {
                    k: v[start:start + 1].tolist()
                    for k, v in small_f2.columns.items()
                }
                f.write(
                    (json.dumps({"data": data, "id": i}) + "\n").encode()
                )
            f.flush()
            replies = [json.loads(f.readline()) for _ in range(n)]
        finally:
            f.close()
            sock.close()
        assert sorted(r["id"] for r in replies) == list(range(n))
        assert all("classes" in r for r in replies)

    def test_envelope_id_echoed_on_error(self, tier):
        _, server = tier
        sock, f = _jsonl_client(server)
        try:
            reply = _roundtrip(f, {"data": {"x": 1.0}, "id": "req-9"})
            assert reply["id"] == "req-9"
            assert reply["reason"] == "invalid"
        finally:
            f.close()
            sock.close()

    def test_shed_reply_shape(self, model, small_f2, monkeypatch):
        registry = ModelRegistry()
        entry = registry.add("alpha", model, workers=1, max_pending=1)
        started = threading.Event()
        release = threading.Event()
        original = entry.engine.compiled.predict

        def gated(columns):
            started.set()
            assert release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(entry.engine.compiled, "predict", gated)
        server = ServeServer(registry, port=0, timeout=30.0).start()
        sock, f = _jsonl_client(server)
        sock2, f2 = _jsonl_client(server)
        try:
            # First request occupies the only admission slot...
            f.write((json.dumps(_row(model)) + "\n").encode())
            f.flush()
            assert started.wait(timeout=30)
            # ...so the second is shed with the backpressure marker.
            reply = _roundtrip(f2, _row(model))
            assert reply["shed"] is True
            assert reply["reason"] == "shed"
            release.set()
            assert "class" in json.loads(f.readline())
        finally:
            f.close()
            sock.close()
            f2.close()
            sock2.close()
            server.close()
            registry.close()
        assert registry.shed_total() == 1

    def test_timeout_reply_and_cancelled_accounting(self, model,
                                                    monkeypatch):
        registry = ModelRegistry()
        entry = registry.add("alpha", model, workers=1)
        release = threading.Event()
        original = entry.engine.compiled.predict

        def slow(columns):
            release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(entry.engine.compiled, "predict", slow)
        server = ServeServer(registry, port=0, timeout=0.2).start()
        sock, f = _jsonl_client(server)
        try:
            reply = _roundtrip(f, _row(model))
            assert reply["reason"] == "timeout"
        finally:
            f.close()
            sock.close()
            release.set()
            server.close()
            registry.close()
        values = registry.metrics.values()
        # The overdue request was cancelled, not completed: client
        # outcome and engine accounting agree.
        assert values["engine_cancelled_requests_total"] == 1
        assert values["engine_completed_requests_total"] == 0


class TestHttp:
    def test_predict_and_keep_alive(self, tier, model):
        _, server = tier
        status, reply = _http(server, "/predict", body=_row(model))
        assert status == 200
        assert reply["class_index"] in (0, 1)
        assert reply["model"] == "alpha"

    def test_predict_envelope_and_query_model(self, tier, model):
        _, server = tier
        status, reply = _http(
            server, "/predict",
            body={"data": _row(model), "model": "alpha", "id": 3},
        )
        assert status == 200 and reply["id"] == 3
        status, reply = _http(
            server, "/predict?model=alpha", body=_row(model)
        )
        assert status == 200

    def test_error_statuses(self, tier, model):
        _, server = tier
        for path, body, want in (
            ("/predict", {"bogus": 1.0}, 400),
            ("/predict", {"data": _row(model), "model": "ghost"}, 404),
            ("/nope", None, 404),
        ):
            with pytest.raises(urllib.error.HTTPError) as exc:
                _http(server, path, body=body)
            assert exc.value.code == want

    def test_zero_row_batch_over_http(self, tier, small_f2):
        _, server = tier
        empty = {k: [] for k in small_f2.columns}
        status, reply = _http(server, "/predict", body=empty)
        assert status == 200
        assert reply["classes"] == []

    def test_models_and_healthz(self, tier):
        _, server = tier
        status, doc = _http(server, "/models")
        assert status == 200
        assert doc["default"] == "alpha"
        assert doc["models"][0]["version"] == "v1"
        status, doc = _http(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["models"]["alpha"]["status"] == "ok"

    def test_swap_endpoint(self, tier, model, model_b, small_f2,
                           tmp_path):
        registry, server = tier
        path = tmp_path / "v2.json"
        save_tree(model_b, str(path))
        status, doc = _http(
            server, "/models/alpha/swap",
            body={"path": str(path), "version": "v2"},
        )
        assert status == 200
        assert doc == {"swapped": "alpha", "version": "v2",
                       "generation": 2}
        status, reply = _http(server, "/predict", body=_row(model))
        assert reply["version"] == "v2"
        assert registry.describe()["swaps"] == 1

    def test_swap_bad_body_is_400(self, tier):
        _, server = tier
        with pytest.raises(urllib.error.HTTPError) as exc:
            _http(server, "/models/alpha/swap", body={"nope": 1})
        assert exc.value.code == 400

    def test_mixed_protocols_on_one_port(self, tier, model):
        _, server = tier
        sock, f = _jsonl_client(server)
        try:
            jsonl_reply = _roundtrip(f, _row(model))
            status, http_reply = _http(server, "/predict",
                                       body=_row(model))
        finally:
            f.close()
            sock.close()
        assert jsonl_reply["class"] == http_reply["class"]


class TestForestServing:
    @pytest.fixture
    def forest(self, small_f2):
        return train_forest(small_f2, 4, subsample=0.8, seed=5).forest

    def test_models_doc_exposes_kind_and_tree_counts(self, tier, forest):
        registry, server = tier
        registry.add("woods", forest, version="f1", workers=2)
        status, doc = _http(server, "/models")
        assert status == 200
        by_name = {m["model"]: m for m in doc["models"]}
        assert by_name["alpha"]["kind"] == "tree"
        assert by_name["alpha"]["n_trees"] == 1
        assert by_name["alpha"]["n_nodes"] > 0
        assert by_name["woods"]["kind"] == "forest"
        assert by_name["woods"]["n_trees"] == 4
        assert by_name["woods"]["n_nodes"] == forest.n_nodes

    def test_healthz_and_snapshot_carry_model_kind(self, tier, forest,
                                                   small_f2):
        from repro.obs.telemetry import TelemetryServer

        registry, server = tier
        registry.add("woods", forest, version="f1")
        status, doc = _http(server, "/healthz")
        assert status == 200
        assert doc["models"]["woods"]["kind"] == "forest"
        assert doc["models"]["woods"]["n_trees"] == 4
        assert doc["models"]["alpha"]["kind"] == "tree"
        with TelemetryServer.for_registry(registry) as telemetry:
            snapshot = telemetry.snapshot()
        assert snapshot["health"]["models"]["woods"]["kind"] == "forest"
        assert (
            snapshot["health"]["models"]["woods"]["n_nodes"]
            == forest.n_nodes
        )

    def test_forest_predictions_over_both_protocols(self, tier, forest,
                                                    small_f2):
        registry, server = tier
        registry.add("woods", forest, version="f1", workers=2)
        batch = {k: v[:8].tolist() for k, v in small_f2.columns.items()}
        status, http_reply = _http(
            server, "/predict", body={"data": batch, "model": "woods"}
        )
        assert status == 200
        assert http_reply["class_indices"] == forest.predict(
            {k: np.asarray(v) for k, v in batch.items()}
        ).tolist()
        sock, f = _jsonl_client(server)
        try:
            reply = _roundtrip(f, {"data": batch, "model": "woods"})
        finally:
            f.close()
            sock.close()
        assert reply["class_indices"] == http_reply["class_indices"]

    def test_hot_swap_tree_to_forest(self, tier, model, forest, small_f2,
                                     tmp_path):
        """A v3 forest file swaps in over a serving tree atomically."""
        registry, server = tier
        path = tmp_path / "forest.json"
        save_model(forest, str(path))
        status, doc = _http(
            server, "/models/alpha/swap",
            body={"path": str(path), "version": "f2"},
        )
        assert status == 200 and doc["version"] == "f2"
        status, models = _http(server, "/models")
        entry = models["models"][0]
        assert entry["kind"] == "forest"
        assert entry["n_trees"] == 4
        batch = {k: v[:8].tolist() for k, v in small_f2.columns.items()}
        status, reply = _http(server, "/predict", body=batch)
        assert reply["version"] == "f2"
        assert reply["class_indices"] == forest.predict(
            {k: np.asarray(v) for k, v in batch.items()}
        ).tolist()


class TestLifecycleAndTelemetry:
    def test_connection_metrics(self, tier, model):
        registry, server = tier
        sock, f = _jsonl_client(server)
        try:
            _roundtrip(f, _row(model))
        finally:
            f.close()
            sock.close()
        _http(server, "/healthz")
        values = registry.metrics.values()
        assert values["serve_connections_total"] >= 2
        assert values['serve_requests_total{proto="jsonl"}'] >= 1
        assert values['serve_requests_total{proto="http"}'] >= 1

    def test_close_is_idempotent_and_frees_port(self, model):
        registry = ModelRegistry()
        registry.add("alpha", model)
        server = ServeServer(registry, port=0).start()
        host, port = server.host, server.port
        server.close()
        server.close()  # second close is a no-op
        # The port is released: a fresh socket can bind it.
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, port))
        probe.close()
        registry.close()

    def test_telemetry_for_registry(self, tier, model):
        from repro.obs.telemetry import TelemetryServer

        registry, server = tier
        _http(server, "/predict", body=_row(model))
        with TelemetryServer.for_registry(registry) as telemetry:
            text = telemetry.metrics_text()
            health = telemetry.health()
            snapshot = telemetry.snapshot()
        assert "engine_requests_total" in text
        assert "serve_admitted_total" in text
        assert health["status"] == "ok"
        assert health["model"] == "alpha"
        assert snapshot["traces"], "registry traces missing from snapshot"
