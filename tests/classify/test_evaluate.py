"""Tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro.classify.evaluate import cross_validate
from repro.data.generator import DatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(
        DatasetSpec(2, 9, 2000, seed=8, perturbation=0.05)
    )


class TestCrossValidate:
    def test_fold_structure(self, data):
        report = cross_validate(data, k=4, prune=False)
        assert len(report.folds) == 4
        total_test = sum(f.test_records for f in report.folds)
        assert total_test == data.n_records
        for fold in report.folds:
            assert fold.train_records + fold.test_records == data.n_records

    def test_accuracy_reasonable(self, data):
        report = cross_validate(data, k=4)
        assert 0.8 < report.mean_accuracy <= 1.0
        assert report.std_accuracy < 0.1

    def test_pruning_reported(self, data):
        report = cross_validate(data, k=3, prune=True)
        for fold in report.folds:
            assert fold.pruned_nodes <= fold.tree_nodes

    def test_deterministic(self, data):
        a = cross_validate(data, k=3, seed=5)
        b = cross_validate(data, k=3, seed=5)
        np.testing.assert_array_equal(a.accuracies, b.accuracies)

    def test_different_seeds_differ(self, data):
        a = cross_validate(data, k=3, seed=5)
        b = cross_validate(data, k=3, seed=6)
        assert not np.array_equal(a.accuracies, b.accuracies)

    def test_k_validated(self, data):
        with pytest.raises(ValueError, match="folds"):
            cross_validate(data, k=1)

    def test_too_small_dataset(self, car_insurance):
        with pytest.raises(ValueError, match="folds"):
            cross_validate(car_insurance, k=10)

    def test_summary_text(self, data):
        report = cross_validate(data, k=3)
        text = report.summary()
        assert "3-fold CV" in text and "accuracy" in text

    def test_parallel_algorithm(self, data):
        report = cross_validate(data, k=3, algorithm="mwk")
        assert 0.8 < report.mean_accuracy <= 1.0
