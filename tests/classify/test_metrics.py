"""Unit tests for evaluation metrics."""

import numpy as np
import pytest

from repro.classify.metrics import accuracy, confusion_matrix, error_rate
from repro.core.builder import build_classifier


class TestAccuracy:
    def test_perfect_on_car_insurance(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        assert accuracy(tree, car_insurance) == 1.0
        assert error_rate(tree, car_insurance) == 0.0

    def test_accuracy_error_sum_to_one(self, small_f7):
        tree = build_classifier(small_f7).tree
        a = accuracy(tree, small_f7)
        e = error_rate(tree, small_f7)
        assert a + e == pytest.approx(1.0)

    def test_empty_dataset_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        empty = car_insurance.take(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="empty"):
            accuracy(tree, empty)


class TestConfusionMatrix:
    def test_diagonal_on_perfect_fit(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        matrix = confusion_matrix(tree, car_insurance)
        assert matrix.shape == (2, 2)
        assert matrix[0, 1] == 0 and matrix[1, 0] == 0
        assert matrix.sum() == car_insurance.n_records

    def test_rows_sum_to_class_counts(self, small_f2):
        tree = build_classifier(small_f2).tree
        matrix = confusion_matrix(tree, small_f2)
        np.testing.assert_array_equal(
            matrix.sum(axis=1), small_f2.class_histogram()
        )

    def test_trace_matches_accuracy(self, small_f2):
        tree = build_classifier(small_f2).tree
        matrix = confusion_matrix(tree, small_f2)
        assert np.trace(matrix) / matrix.sum() == pytest.approx(
            accuracy(tree, small_f2)
        )
