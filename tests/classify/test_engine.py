"""Unit and stress tests for the micro-batching inference engine."""

import threading

import numpy as np
import pytest

from repro._native import pool
from repro.classify import native as cnative
from repro.classify.engine import InferenceEngine
from repro.classify.predict import predict
from repro.core.builder import build_classifier
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def model(small_f2):
    return build_classifier(small_f2).tree


class TestSubmit:
    def test_batch_matches_predict(self, model, small_f2):
        with InferenceEngine(model) as engine:
            out = engine.predict_batch(small_f2.columns, timeout=30)
        np.testing.assert_array_equal(out, predict(model, small_f2))

    def test_scalar_row_returns_int(self, model, small_f2):
        row = small_f2.tuple_at(3)
        with InferenceEngine(model) as engine:
            got = engine.submit(row).result(timeout=30)
        assert isinstance(got, int)
        assert 0 <= got < small_f2.schema.n_classes

    def test_empty_batch(self, model, small_f2):
        cols = {k: v[:0] for k, v in small_f2.columns.items()}
        with InferenceEngine(model) as engine:
            out = engine.predict_batch(cols, timeout=30)
        assert out.shape == (0,)

    def test_oversized_request_is_chunked(self, model, small_f2):
        # One pool lane: with in-kernel threading active the engine
        # hands the whole batch to the kernel instead of chunking.
        with pool.thread_override(1), InferenceEngine(
            model, batch_size=64
        ) as engine:
            out = engine.predict_batch(small_f2.columns, timeout=30)
            stats = engine.stats()
        np.testing.assert_array_equal(out, predict(model, small_f2))
        assert stats["engine_batches_total"] >= small_f2.n_records // 64

    def test_many_small_requests_coalesce(self, model, small_f2):
        n = small_f2.n_records
        with InferenceEngine(model, batch_size=4096) as engine:
            handles = [
                engine.submit(
                    {k: v[i : i + 1] for k, v in small_f2.columns.items()}
                )
                for i in range(0, n, 7)
            ]
            got = np.array([h.result(timeout=30)[0] for h in handles])
        want = predict(model, small_f2)[np.arange(0, n, 7)]
        np.testing.assert_array_equal(got, want)


class TestRejection:
    def test_missing_attribute_rejected_with_metric(self, model, small_f2):
        cols = dict(small_f2.columns)
        victim = next(iter(cols))
        del cols[victim]
        with InferenceEngine(model, name="risk-v1") as engine:
            with pytest.raises(ValueError, match="risk-v1") as err:
                engine.submit(cols)
            stats = engine.stats()
        assert victim in str(err.value)
        assert (
            stats['engine_rejected_requests_total{reason="missing-attribute"}']
            == 1
        )

    def test_ragged_columns_rejected(self, model, small_f2):
        cols = {k: v.copy() for k, v in small_f2.columns.items()}
        victim = next(iter(cols))
        cols[victim] = cols[victim][:-3]
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError, match="disagree"):
                engine.submit(cols)
            stats = engine.stats()
        assert stats['engine_rejected_requests_total{reason="ragged"}'] == 1

    def test_non_numeric_column_rejected_at_submit(self, model, small_f2):
        """Bad dtypes are rejected before queueing, so they can never
        poison unrelated requests co-batched with them."""
        bad = {k: np.array(["x"] * 4) for k in small_f2.columns}
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError, match="dtype"):
                engine.submit(bad)
            good = engine.predict_batch(small_f2.columns, timeout=30)
            stats = engine.stats()
        np.testing.assert_array_equal(good, predict(model, small_f2))
        assert (
            stats['engine_rejected_requests_total{reason="non-numeric"}'] == 1
        )

    def test_2d_column_rejected_at_submit(self, model, small_f2):
        cols = {k: np.tile(v, (2, 1)) for k, v in small_f2.columns.items()}
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError, match="one-dimensional"):
                engine.submit(cols)
            stats = engine.stats()
        assert (
            stats['engine_rejected_requests_total{reason="bad-shape"}'] == 1
        )

    def test_submit_after_close_rejected(self, model, small_f2):
        engine = InferenceEngine(model)
        engine.close()
        with pytest.raises(ValueError, match="closed"):
            engine.submit(small_f2.columns)
        assert (
            engine.stats()['engine_rejected_requests_total{reason="closed"}']
            == 1
        )

    def test_close_is_idempotent(self, model):
        engine = InferenceEngine(model)
        engine.close()
        engine.close()


class TestObservability:
    def test_metrics_flow_into_shared_registry(self, model, small_f2):
        registry = MetricsRegistry()
        with InferenceEngine(model, registry=registry) as engine:
            engine.predict_batch(small_f2.columns, timeout=30)
        values = registry.values()
        assert values["engine_rows_total"] == small_f2.n_records
        assert values["engine_requests_total"] == 1
        assert values["engine_batches_total"] >= 1

    def test_busy_spans_recorded(self, model, small_f2):
        from repro.obs.spans import SpanCollector

        collector = SpanCollector()
        with InferenceEngine(model, collector=collector) as engine:
            engine.predict_batch(small_f2.columns, timeout=30)
        assert any(iv.kind == "busy" for iv in collector.intervals)


class TestStress:
    """Concurrent submitters against multiple workers (rides in CI)."""

    def test_concurrent_submitters(self, model, small_f2):
        want = predict(model, small_f2)
        n = small_f2.n_records
        errors = []

        def client(seed):
            rng = np.random.default_rng(seed)
            try:
                with_engine(rng)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def with_engine(rng):
            for _ in range(20):
                lo = int(rng.integers(0, n - 1))
                hi = int(rng.integers(lo + 1, n + 1))
                cols = {
                    k: v[lo:hi] for k, v in small_f2.columns.items()
                }
                got = engine.predict_batch(cols, timeout=60)
                np.testing.assert_array_equal(got, want[lo:hi])

        with InferenceEngine(model, batch_size=512, n_workers=3) as engine:
            threads = [
                threading.Thread(target=client, args=(seed,))
                for seed in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = engine.stats()
        assert not errors
        assert stats["engine_requests_total"] == 8 * 20
        assert stats["engine_rows_total"] >= 8 * 20  # every row predicted

    def test_errors_delivered_not_hung(self, model, small_f2):
        """A failure inside the worker resolves the future with the error."""
        with InferenceEngine(model) as engine:
            def boom(chunk):
                raise RuntimeError("kernel exploded")

            # Shadow the (per-tree, function-scoped) compiled predict so
            # the failure happens inside the worker, past admission.
            engine.compiled.predict = boom
            request = engine.submit(small_f2.columns)
            with pytest.raises(RuntimeError, match="kernel exploded"):
                request.result(timeout=30)


class TestRejectionBreakdown:
    def test_per_reason_counts(self, model, small_f2):
        good = small_f2.columns
        missing = {k: v for k, v in list(good.items())[1:]}
        ragged = {k: v.copy() for k, v in good.items()}
        ragged[next(iter(ragged))] = ragged[next(iter(ragged))][:-1]
        bad_shape = {k: np.stack([v, v]) for k, v in good.items()}
        engine = InferenceEngine(model)
        with engine:
            for bad in (missing, missing, ragged, bad_shape):
                with pytest.raises(ValueError):
                    engine.submit(bad)
            engine.predict_batch(good, timeout=30)
        with pytest.raises(ValueError):
            engine.submit(good)  # after close
        breakdown = engine.rejections()
        assert breakdown == {
            "bad-shape": 1,
            "closed": 1,
            "missing-attribute": 2,
            "non-numeric": 0,
            "ragged": 1,
        }
        stats = engine.stats()
        # Submit attempts = admitted + every rejection, exactly.
        assert stats["engine_requests_total"] == 1
        assert sum(breakdown.values()) == 4 + 1

    def test_breakdown_starts_all_zero(self, model):
        with InferenceEngine(model) as engine:
            breakdown = engine.rejections()
        assert set(breakdown) == {
            "missing-attribute", "ragged", "non-numeric", "bad-shape",
            "closed",
        }
        assert all(v == 0 for v in breakdown.values())


class TestTracing:
    def test_completed_request_trace_fields(self, model, small_f2):
        with pool.thread_override(1), InferenceEngine(
            model, batch_size=64, name="traced"
        ) as engine:
            handle = engine.submit(small_f2.columns)
            handle.result(timeout=30)
            trace = engine.trace_ring.traces()[-1]
        assert trace.trace_id == handle.trace_id
        assert trace.model == "traced"
        assert trace.rows == small_f2.n_records
        assert trace.worker == 0
        assert trace.group_size == 1
        assert trace.batch_rows == small_f2.n_records
        assert trace.chunks == -(-small_f2.n_records // 64)
        assert trace.status == "ok"
        assert 0.0 <= trace.queue_wait_s <= trace.total_s
        assert 0.0 < trace.predict_s <= trace.total_s
        assert trace.dequeue_ts >= trace.submit_ts
        assert trace.finish_ts >= trace.dequeue_ts

    def test_grouped_requests_share_group_fields(self, model, small_f2):
        cols = small_f2.columns
        with InferenceEngine(model, batch_size=4096) as engine:
            handles = [
                engine.submit({k: v[i : i + 1] for k, v in cols.items()})
                for i in range(20)
            ]
            for h in handles:
                h.result(timeout=30)
            traces = engine.trace_ring.traces()
        assert len(traces) == 20
        assert len({t.trace_id for t in traces}) == 20
        grouped = [t for t in traces if t.group_size > 1]
        assert grouped, "no requests coalesced"
        assert all(t.batch_rows == t.group_size for t in grouped)

    def test_error_trace_recorded(self, model, small_f2, monkeypatch):
        engine = InferenceEngine(model, name="err")

        def boom(columns):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr(engine.compiled, "predict", boom)
        with engine:
            handle = engine.submit(small_f2.columns)
            with pytest.raises(RuntimeError, match="kernel exploded"):
                handle.result(timeout=30)
        trace = engine.trace_ring.traces()[-1]
        assert trace.status == "error"
        assert "kernel exploded" in trace.error
        assert engine.stats()["engine_request_errors_total"] == 1
        assert engine.stats()["engine_completed_requests_total"] == 0


class TestHealth:
    def test_health_document(self, model, small_f2):
        with InferenceEngine(
            model, n_workers=2, batch_size=256, name="h", version="3"
        ) as engine:
            engine.predict_batch(small_f2.columns, timeout=30)
            doc = engine.health()
            assert doc["status"] == "ok"
            assert not engine.closed
        assert engine.closed
        closed_doc = engine.health()
        assert closed_doc["status"] == "closed"
        assert doc["model"] == "h"
        assert doc["version"] == "3"
        assert doc["workers"] == 2
        assert doc["batch_size"] == 256
        assert doc["n_nodes"] == engine.compiled.n_nodes
        assert doc["uptime_s"] > 0
        assert doc["queue_depth"] == 0


class TestCancellation:
    """PredictionRequest.cancel(): dropped work, exact accounting."""

    def test_cancel_queued_request_drops_work(self, model, small_f2,
                                              monkeypatch):
        started = threading.Event()
        release = threading.Event()
        engine = InferenceEngine(model, n_workers=1, batch_size=64)
        original = engine.compiled.predict

        def gated(columns):
            started.set()
            assert release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(engine.compiled, "predict", gated)
        row = {k: v[:8] for k, v in small_f2.columns.items()}
        with engine:
            first = engine.submit(row)
            assert started.wait(timeout=30)  # worker busy in predict
            second = engine.submit(row)
            assert second.cancel() is True
            assert second.cancelled
            release.set()
            first.result(timeout=30)
        from repro.classify.engine import RequestCancelled

        with pytest.raises(RequestCancelled):
            second.result(timeout=30)
        stats = engine.stats()
        assert stats["engine_completed_requests_total"] == 1
        assert stats["engine_cancelled_requests_total"] == 1
        # The cancelled request's rows were never predicted.
        assert stats["engine_rows_total"] == 8
        statuses = [t.status for t in engine.trace_ring.traces()]
        assert sorted(statuses) == ["cancelled", "ok"]

    def test_cancel_after_resolve_loses_the_race(self, model, small_f2):
        with InferenceEngine(model) as engine:
            request = engine.submit(small_f2.columns)
            result = request.result(timeout=30)
        # The result already resolved: cancel reports failure and the
        # value stays retrievable — client and engine agree.
        assert request.cancel() is False
        assert not request.cancelled
        np.testing.assert_array_equal(request.result(timeout=0), result)
        assert engine.stats()["engine_completed_requests_total"] == 1
        assert engine.stats()["engine_cancelled_requests_total"] == 0

    def test_cancel_in_flight_counts_cancelled_not_completed(
        self, model, small_f2, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()
        engine = InferenceEngine(model, n_workers=1)
        original = engine.compiled.predict

        def gated(columns):
            started.set()
            assert release.wait(timeout=30)
            return original(columns)

        monkeypatch.setattr(engine.compiled, "predict", gated)
        with engine:
            request = engine.submit(small_f2.columns)
            assert started.wait(timeout=30)
            assert request.cancel() is True  # mid-predict: cancel wins
            release.set()
        stats = engine.stats()
        assert stats["engine_completed_requests_total"] == 0
        assert stats["engine_cancelled_requests_total"] == 1
        assert engine.trace_ring.traces()[-1].status == "cancelled"

    def test_done_callback_fires_once_resolved(self, model, small_f2):
        fired = []
        with InferenceEngine(model) as engine:
            request = engine.submit(small_f2.columns)
            request.add_done_callback(fired.append)
            request.result(timeout=30)
        assert fired == [request]
        # Registering on an already-resolved request fires immediately.
        late = []
        request.add_done_callback(late.append)
        assert late == [request]


class TestCloseRace:
    """Regression: submit racing close must not leak unfinished traces."""

    def test_zero_dropped_traces_under_submit_close_race(
        self, model, small_f2, monkeypatch
    ):
        import repro.classify.engine as engine_mod
        from repro.obs.tracectx import mint_trace_id as real_mint

        mints = []
        mint_lock = threading.Lock()

        def counting_mint():
            tid = real_mint()
            with mint_lock:
                mints.append(tid)
            return tid

        monkeypatch.setattr(engine_mod, "mint_trace_id", counting_mint)
        row = {k: v[:4] for k, v in small_f2.columns.items()}
        for _ in range(5):  # several rounds to make the race likely
            mints.clear()
            engine = InferenceEngine(model, n_workers=2, batch_size=64)
            barrier = threading.Barrier(5)

            def submitter():
                barrier.wait()
                try:
                    while True:
                        engine.submit(row)
                except ValueError:
                    return  # engine closed under us

            threads = [
                threading.Thread(target=submitter) for _ in range(4)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            engine.close()
            for t in threads:
                t.join()
            # Every minted trace was finished and pushed: a trace is
            # only minted for an admitted request (after the closed
            # check), and close() drains every admitted request.
            assert engine.trace_ring.recorded == len(mints)
            assert engine.trace_ring.dropped == 0

    def test_rejected_at_close_mints_no_trace(self, model, small_f2,
                                              monkeypatch):
        import repro.classify.engine as engine_mod
        from repro.classify.engine import EngineClosedError

        mints = []
        monkeypatch.setattr(
            engine_mod, "mint_trace_id",
            lambda: mints.append(1) or "t-0",
        )
        engine = InferenceEngine(model)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.submit(small_f2.columns)
        assert mints == []
        assert engine.rejections()["closed"] == 1


class TestZeroRowBatch:
    def test_zero_row_submit_resolves_empty(self, model, small_f2):
        empty = {k: v[:0] for k, v in small_f2.columns.items()}
        with InferenceEngine(model, n_workers=2) as engine:
            request = engine.submit(empty)
            out = request.result(timeout=30)
        assert out.shape == (0,)
        assert not request.scalar
        stats = engine.stats()
        assert stats["engine_completed_requests_total"] == 1
        assert stats["engine_rows_total"] == 0
        trace = engine.trace_ring.traces()[-1]
        assert trace.rows == 0
        assert trace.status == "ok"

    def test_zero_row_grouped_with_real_requests(self, model, small_f2):
        cols = small_f2.columns
        empty = {k: v[:0] for k, v in cols.items()}
        with InferenceEngine(model, batch_size=4096) as engine:
            handles = [engine.submit(empty) for _ in range(3)]
            handles.append(engine.submit(cols))
            outs = [h.result(timeout=30) for h in handles]
        from repro.classify.predict import predict as _predict

        for out in outs[:3]:
            assert out.shape == (0,)
        np.testing.assert_array_equal(outs[3], _predict(model, small_f2))


def _mt_route_available() -> bool:
    kernel = cnative.native_kernel()
    return kernel is not None and kernel._route_mt is not None


class _CompiledSpy:
    """Delegates to a CompiledTree, recording every predict() argument."""

    def __init__(self, inner):
        self.inner = inner
        self.chunks = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def predict(self, chunk):
        self.chunks.append(chunk)
        return self.inner.predict(chunk)


class TestInKernelParallelism:
    """Engine chunking vs the native pool's in-kernel row blocking."""

    def test_single_chunk_passes_columns_through(self, model, small_f2):
        # A request that fits one batch must reach predict() as the
        # merged columns object itself — no sliced-dict rebuild.
        cols = small_f2.columns
        with InferenceEngine(model, batch_size=4096) as engine:
            spy = _CompiledSpy(engine.compiled)
            engine.compiled = spy
            out, chunks, _ = engine._predict_chunked(
                0, cols, small_f2.n_records
            )
        assert chunks == 1
        assert len(spy.chunks) == 1
        assert spy.chunks[0] is cols
        np.testing.assert_array_equal(out, predict(model, small_f2))

    def test_one_lane_still_chunks(self, model, small_f2):
        cols = small_f2.columns
        with pool.thread_override(1), InferenceEngine(
            model, batch_size=64
        ) as engine:
            spy = _CompiledSpy(engine.compiled)
            engine.compiled = spy
            out, chunks, _ = engine._predict_chunked(
                0, cols, small_f2.n_records
            )
        assert chunks == -(-small_f2.n_records // 64)
        assert all(chunk is not cols for chunk in spy.chunks)
        np.testing.assert_array_equal(out, predict(model, small_f2))

    @pytest.mark.skipif(
        not _mt_route_available(),
        reason="threaded native router unavailable",
    )
    def test_threaded_kernel_takes_whole_batch(self, model, small_f2):
        # With >=2 pool lanes the engine stops chunking: one kernel
        # call row-blocks the batch across the in-kernel pool.
        cols = small_f2.columns
        with pool.thread_override(4), InferenceEngine(
            model, batch_size=64
        ) as engine:
            spy = _CompiledSpy(engine.compiled)
            engine.compiled = spy
            out, chunks, _ = engine._predict_chunked(
                0, cols, small_f2.n_records
            )
        assert chunks == 1
        assert spy.chunks == [cols]
        np.testing.assert_array_equal(out, predict(model, small_f2))

    @pytest.mark.skipif(
        not _mt_route_available(),
        reason="threaded native router unavailable",
    )
    def test_predictions_identical_across_lane_counts(self, model, small_f2):
        ref = predict(model, small_f2)
        for lanes in (1, 2, 4):
            with pool.thread_override(lanes), InferenceEngine(
                model, batch_size=64
            ) as engine:
                out = engine.predict_batch(small_f2.columns, timeout=30)
            np.testing.assert_array_equal(out, ref)
