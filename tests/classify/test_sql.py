"""Unit tests for the tree-to-SQL export."""

import numpy as np
import pytest

from repro.classify.sql import class_where_clause, tree_to_sql_case
from repro.core.builder import build_classifier
from repro.core.tree import DecisionTree, Node
from repro.data.dataset import Dataset


class TestWhereClause:
    def test_car_insurance_high_risk(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        clause = class_where_clause(tree, "high")
        assert '"age" <' in clause

    def test_unknown_class_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        with pytest.raises(KeyError):
            class_where_clause(tree, "medium")

    def test_clause_semantics_match_predictions(self, car_insurance):
        """Evaluating the WHERE clause in Python selects exactly the rows
        the tree labels with that class."""
        tree = build_classifier(car_insurance).tree
        clause = class_where_clause(tree, "high")
        import re

        pyexpr = (
            clause.replace('"', "")
            .replace(" AND ", " and ")
            .replace("\n   OR ", " or ")
            .replace(" IN ", " in ")
            .replace("NOT ", "not ")
        )
        # Make single-member SQL IN-lists valid Python tuples: (1) -> (1,).
        pyexpr = re.sub(r"in \(([^)]*)\)", r"in (\1,)", pyexpr)
        from repro.classify.predict import predict

        predicted = predict(tree, car_insurance)
        for tid in range(car_insurance.n_records):
            env = {
                k: (int(v) if k == "car_type" else float(v))
                for k, v in car_insurance.tuple_at(tid).items()
            }
            env = {k: v for k, v in env.items()}
            # `x in (1, 2)` needs tuples; our SQL renders (1, 2) already.
            selected = eval(pyexpr, {"__builtins__": {}}, env)  # noqa: S307
            assert selected == (predicted[tid] == 0)

    def test_root_leaf_tree(self, tiny_schema):
        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0]), "car": np.array([0], dtype=np.int64)},
            np.array([1], dtype=np.int32),
        )
        tree = build_classifier(pure).tree
        assert class_where_clause(tree, "no") == "TRUE"
        assert class_where_clause(tree, "yes") == "FALSE"


class TestCaseExport:
    def test_structure(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        sql = tree_to_sql_case(tree, table="policies")
        assert sql.startswith("SELECT *,")
        assert 'FROM "policies";' in sql
        assert sql.count("CASE WHEN") == sum(
            1 for n in tree.iter_nodes() if not n.is_leaf
        )
        assert "'high'" in sql and "'low'" in sql

    def test_identifier_quoting(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        sql = tree_to_sql_case(tree, table='weird"name')
        assert '"weird""name"' in sql

    def test_leaf_only_tree(self, tiny_schema):
        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0]), "car": np.array([0], dtype=np.int64)},
            np.array([0], dtype=np.int32),
        )
        tree = build_classifier(pure).tree
        sql = tree_to_sql_case(tree)
        assert "CASE" not in sql
        assert "'yes'" in sql


class TestLiteralEscaping:
    """Class labels are string literals: quotes must not break out."""

    def _tree_with_labels(self, labels):
        from repro.data.schema import Attribute, AttributeKind, Schema

        schema = Schema(
            [Attribute("age", AttributeKind.CONTINUOUS)],
            class_names=labels,
        )
        root = Node(0, 0, np.array([5, 3], dtype=np.int64))
        left = Node(1, 1, np.array([5, 0], dtype=np.int64))
        right = Node(2, 1, np.array([0, 3], dtype=np.int64))
        left.make_leaf()
        right.make_leaf()
        from repro.core.tree import Split

        root.set_split(
            Split(
                attribute="age",
                attribute_index=0,
                threshold=40.0,
                subset=None,
                weighted_gini=0.1,
            ),
            left,
            right,
        )
        return DecisionTree(schema, root)

    def test_single_quote_in_label_is_doubled(self):
        tree = self._tree_with_labels(("won't buy", "o'brien"))
        sql = tree_to_sql_case(tree)
        assert "'won''t buy'" in sql
        assert "'o''brien'" in sql
        # The raw (unescaped) literal must not appear.
        assert "'won't buy'" not in sql

    def test_injection_attempt_stays_inside_literal(self):
        evil = "x'; DROP TABLE users; --"
        tree = self._tree_with_labels((evil, "ok"))
        sql = tree_to_sql_case(tree)
        assert "'x''; DROP TABLE users; --'" in sql
        clause = class_where_clause(tree, evil)
        assert '"age"' in clause

    def test_where_clause_semantics_unchanged(self):
        tree = self._tree_with_labels(("a", "b"))
        assert class_where_clause(tree, "a") == '("age" < 40)'
        assert class_where_clause(tree, "b") == '("age" >= 40)'
