"""Differential tests: compiled flat-tree IR vs the recursive oracle.

The compiled representation (and each of its routing backends) must be
*bit-identical* to the legacy recursive router on every input — random
schemas, categorical-only trees, wild out-of-distribution values, empty
and single-row batches, and skewed chains far past the recursion limit.
"""

import sys

import numpy as np
import pytest

from repro.classify.compiled import CompiledTree, compile_tree, compiled_for
from repro.classify.native import native_available
from repro.classify.predict import (
    predict,
    predict_node_ids,
    predict_node_ids_oracle,
    predict_oracle,
)
from repro.classify.treegen import (
    chain_tree,
    random_columns,
    random_schema,
    random_tree,
)
from repro.core.builder import build_classifier
from repro.core.serialize import tree_from_dict, tree_to_dict

BACKENDS = ["numpy"] + (["native"] if native_available() else [])


def _random_case(rng):
    schema = random_schema(rng)
    has_cat = any(a.is_categorical for a in schema.attributes)
    tree = random_tree(
        schema,
        max_depth=int(rng.integers(1, 10)),
        seed=int(rng.integers(1 << 30)),
        leaf_prob=0.3,
        categorical_only=bool(has_cat and rng.integers(2) == 0),
    )
    return schema, tree


class TestCompileShape:
    def test_root_is_row_zero_and_parents_precede_children(self):
        rng = np.random.default_rng(0)
        _, tree = _random_case(rng)
        c = compile_tree(tree)
        assert c.node_id[0] == tree.root.node_id
        for i in range(c.n_nodes):
            if c.feature[i] >= 0:
                assert c.left[i] > i and c.right[i] > i

    def test_counts_and_depth(self, small_f2):
        tree = build_classifier(small_f2).tree
        c = compiled_for(tree)
        nodes = list(tree.iter_nodes())
        assert c.n_nodes == len(nodes)
        assert c.n_leaves == sum(1 for n in nodes if n.is_leaf)
        assert c.max_depth == max(n.depth for n in nodes)
        assert c.nbytes > 0

    def test_compiled_for_caches_on_instance(self, small_f2):
        tree = build_classifier(small_f2).tree
        assert compiled_for(tree) is compiled_for(tree)

    def test_children2_leaves_self_loop(self, small_f2):
        tree = build_classifier(small_f2).tree
        c = compiled_for(tree)
        ch = c.children2
        for i in range(c.n_nodes):
            if c.feature[i] < 0:
                assert ch[2 * i] == i and ch[2 * i + 1] == i
            else:
                assert ch[2 * i] == c.right[i]
                assert ch[2 * i + 1] == c.left[i]

    def test_roundtrip_to_tree(self, small_f2):
        tree = build_classifier(small_f2).tree
        rebuilt = compiled_for(tree).to_tree()
        assert rebuilt.signature() == tree.signature()


class TestDifferentialGrid:
    """Randomized bit-identity sweep over schemas, shapes and backends."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_trees_match_oracle(self, seed):
        rng = np.random.default_rng(1000 + seed)
        schema, tree = _random_case(rng)
        c = compile_tree(tree)
        for wild in (False, True):
            for n in (0, 1, 257):
                cols = random_columns(schema, n, rng=rng, wild=wild)
                want = predict_oracle(tree, cols)
                want_ids = predict_node_ids_oracle(tree, cols)
                for backend in BACKENDS:
                    got = c.predict(cols, backend=backend)
                    got_ids = c.predict_node_ids(cols, backend=backend)
                    np.testing.assert_array_equal(got, want)
                    np.testing.assert_array_equal(got_ids, want_ids)

    @pytest.mark.parametrize("seed", range(4))
    def test_built_classifier_matches_oracle(self, seed, small_f2):
        tree = build_classifier(small_f2).tree
        rng = np.random.default_rng(seed)
        cols = {
            a.name: (
                rng.uniform(-1e6, 1e6, 500)
                if a.is_continuous
                else rng.integers(0, a.cardinality, 500)
            )
            for a in small_f2.schema.attributes
        }
        np.testing.assert_array_equal(
            predict(tree, cols), predict_oracle(tree, cols)
        )
        np.testing.assert_array_equal(
            predict_node_ids(tree, cols), predict_node_ids_oracle(tree, cols)
        )

    def test_narrow_float_columns_match_oracle(self):
        """float32 columns compare in float32 (numpy weak promotion);
        the compiled router must reproduce that exactly."""
        rng = np.random.default_rng(5)
        schema, tree = _random_case(rng)
        cols = random_columns(schema, 400, rng=rng)
        cols = {
            k: (
                v.astype(np.float32)
                if np.issubdtype(v.dtype, np.floating)
                else v
            )
            for k, v in cols.items()
        }
        want = predict_oracle(tree, cols)
        c = compile_tree(tree)
        np.testing.assert_array_equal(c.predict(cols), want)

    def test_serialized_tree_same_predictions(self):
        rng = np.random.default_rng(9)
        schema, tree = _random_case(rng)
        cols = random_columns(schema, 300, rng=rng)
        want = predict_oracle(tree, cols)
        for version in (1, 2):
            restored = tree_from_dict(tree_to_dict(tree, version=version))
            np.testing.assert_array_equal(
                compiled_for(restored).predict(cols), want
            )


class TestDeepChains:
    """Skewed trees far beyond sys.getrecursionlimit()."""

    DEPTH = 10_000

    @pytest.fixture(scope="class")
    def chain(self):
        assert self.DEPTH > sys.getrecursionlimit()
        tree, deep_value = chain_tree(self.DEPTH)
        return tree, deep_value

    def test_predict_deep_chain(self, chain):
        tree, deep_value = chain
        c = compiled_for(tree)
        x = np.array([0.5, deep_value, 3.2, float(self.DEPTH + 7)])
        for backend in BACKENDS:
            out = c.predict({"x": x}, backend=backend)
            ids = c.predict_node_ids({"x": x}, backend=backend)
            assert out.shape == (4,)
            # Rows past the last split land in the deepest leaf.
            assert ids[1] == ids[3]
            assert ids[0] != ids[1]

    def test_backends_agree_on_chain(self, chain):
        tree, _ = chain
        c = compiled_for(tree)
        x = np.linspace(-5, self.DEPTH + 5, 4096)
        results = [
            c.route_rows({"x": x}, backend=backend) for backend in BACKENDS
        ]
        for got in results[1:]:
            np.testing.assert_array_equal(got, results[0])

    def test_serialize_deep_chain_round_trip(self, chain):
        tree, _ = chain
        data = tree_to_dict(tree)  # v2, iterative
        restored = tree_from_dict(data)
        c1 = compiled_for(tree)
        c2 = compiled_for(restored)
        np.testing.assert_array_equal(c1.feature, c2.feature)
        np.testing.assert_array_equal(c1.threshold, c2.threshold)

    def test_v1_serialize_deep_chain_is_iterative_too(self, chain):
        tree, _ = chain
        restored = tree_from_dict(tree_to_dict(tree, version=1))
        assert compiled_for(restored).n_nodes == compiled_for(tree).n_nodes

    def test_sql_deep_chain_no_recursion_error(self, chain):
        from repro.classify.sql import tree_to_sql_case

        tree, _ = chain
        sql = tree_to_sql_case(tree)
        assert sql.count("CASE WHEN") == self.DEPTH


class TestCategoricalTruncation:
    """Float categorical codes truncate toward zero, matching astype(int64).

    In particular values in ``(-1.0, 0.0)`` truncate to code 0 and *are*
    members whenever category 0 is in the subset — on every backend.
    """

    @pytest.fixture()
    def cat_tree(self):
        from repro.core.tree import DecisionTree, Node, Split
        from repro.data.schema import Attribute, AttributeKind, Schema

        schema = Schema(
            [Attribute("k", AttributeKind.CATEGORICAL, 4)],
            class_names=("a", "b"),
        )
        root = Node(0, 0, np.array([3, 2], dtype=np.int64))
        left = Node(1, 1, np.array([3, 0], dtype=np.int64))
        right = Node(2, 1, np.array([0, 2], dtype=np.int64))
        left.make_leaf()
        right.make_leaf()
        root.set_split(
            Split(
                attribute="k",
                attribute_index=0,
                threshold=None,
                subset=frozenset({0, 2}),
                weighted_gini=0.0,
            ),
            left,
            right,
        )
        return DecisionTree(schema, root)

    def test_fractional_and_negative_codes_match_oracle(self, cat_tree):
        c = compile_tree(cat_tree)
        # >= 8 rows so the native kernel's interleaved lanes run too.
        vals = np.array(
            [-0.5, -0.999, -1.0, -1.5, -2.0, -0.0, 0.0, 0.5,
             1.0, 1.5, 2.0, 2.5, 2.999, 3.0, 3.9, 7.5]
        )
        cols = {"k": vals}
        want = predict_oracle(cat_tree, cols)
        want_ids = predict_node_ids_oracle(cat_tree, cols)
        for backend in BACKENDS:
            np.testing.assert_array_equal(
                c.predict(cols, backend=backend), want
            )
            np.testing.assert_array_equal(
                c.predict_node_ids(cols, backend=backend), want_ids
            )

    def test_neg_fraction_is_member_of_code_zero(self, cat_tree):
        # Pin the semantics (not just backend agreement): -0.5 -> code 0,
        # and 0 is in the subset, so the row goes left.
        c = compile_tree(cat_tree)
        left_id = cat_tree.root.left.node_id
        for backend in BACKENDS:
            ids = c.predict_node_ids(
                {"k": np.array([-0.5] * 9)}, backend=backend
            )
            assert (ids == left_id).all()


class TestUnusedColumnAbsent:
    """Columns no split reads may be omitted — on every backend.

    The tree below is a skewed chain over attribute index 1, so lanes
    park at wildly different depths while attribute 0 ("pad") has no
    column at all; routers must never load from the absent column's
    placeholder (this was an out-of-bounds read in the native kernel).
    """

    DEPTH = 40

    @pytest.fixture()
    def pad_chain(self):
        from repro.core.tree import DecisionTree, Node, Split
        from repro.data.schema import Attribute, AttributeKind, Schema

        schema = Schema(
            [
                Attribute("pad", AttributeKind.CONTINUOUS),
                Attribute("x", AttributeKind.CONTINUOUS),
            ],
            class_names=("a", "b"),
        )
        next_id = [0]

        def new_node(d):
            counts = np.array([2, 1] if d % 2 else [1, 2], dtype=np.int64)
            node = Node(next_id[0], d, counts)
            next_id[0] += 1
            return node

        def x_split(threshold):
            return Split(attribute="x", attribute_index=1, threshold=threshold)

        root = new_node(0)
        spine = root
        for d in range(self.DEPTH):
            leaf = new_node(d + 1)
            leaf.make_leaf()
            if d == self.DEPTH - 1:
                last = new_node(d + 1)
                last.make_leaf()
                spine.set_split(x_split(float(d + 1)), leaf, last)
            else:
                nxt = new_node(d + 1)
                spine.set_split(x_split(float(d + 1)), leaf, nxt)
                spine = nxt
        return DecisionTree(schema, root)

    def test_large_batch_without_pad_column(self, pad_chain):
        c = compiled_for(pad_chain)
        assert c.used_features == [1]
        rng = np.random.default_rng(7)
        # Large enough that an out-of-bounds read past a 1-element
        # placeholder buffer would stray megabytes off the heap.
        cols = {"x": rng.uniform(-5.0, self.DEPTH + 5.0, 300_000)}
        want = predict_oracle(pad_chain, cols)
        for backend in BACKENDS:
            np.testing.assert_array_equal(
                c.predict(cols, backend=backend), want
            )


class TestValidation:
    def test_missing_attribute_named_in_error(self, small_f2):
        tree = build_classifier(small_f2).tree
        cols = dict(small_f2.columns)
        used = compiled_for(tree).used_features
        victim = small_f2.schema.attribute_names[used[0]]
        del cols[victim]
        with pytest.raises(ValueError, match=victim):
            predict(tree, cols)

    def test_unknown_backend_rejected(self, small_f2):
        tree = build_classifier(small_f2).tree
        with pytest.raises(ValueError, match="backend"):
            compiled_for(tree).route_rows(small_f2.columns, backend="cuda")

    def test_negative_categorical_code_rejected_at_compile(self):
        from repro.core.tree import DecisionTree, Node, Split
        from repro.data.schema import Attribute, AttributeKind, Schema

        schema = Schema(
            [Attribute("k", AttributeKind.CATEGORICAL, 4)],
            class_names=("a", "b"),
        )
        root = Node(0, 0, np.array([3, 2], dtype=np.int64))
        left = Node(1, 1, np.array([3, 0], dtype=np.int64))
        right = Node(2, 1, np.array([0, 2], dtype=np.int64))
        left.make_leaf()
        right.make_leaf()
        root.set_split(
            Split(
                attribute="k",
                attribute_index=0,
                threshold=None,
                subset=frozenset({-1, 2}),
                weighted_gini=0.0,
            ),
            left,
            right,
        )
        with pytest.raises(ValueError, match="negative"):
            compile_tree(DecisionTree(schema, root))


@pytest.mark.skipif(not native_available(), reason="no C compiler")
class TestNativeKernel:
    def test_native_backend_forced(self, small_f2):
        tree = build_classifier(small_f2).tree
        c = compiled_for(tree)
        np.testing.assert_array_equal(
            c.predict(small_f2.columns, backend="native"),
            c.predict(small_f2.columns, backend="numpy"),
        )

    def test_native_rejects_narrow_float(self):
        rng = np.random.default_rng(11)
        while True:
            schema, tree = _random_case(rng)
            c = compile_tree(tree)
            cont_used = [
                f
                for f in c.used_features
                if schema.attributes[f].is_continuous
            ]
            if cont_used:
                break
        cols = random_columns(schema, 16, rng=rng)
        name = schema.attribute_names[cont_used[0]]
        cols[name] = cols[name].astype(np.float32)
        with pytest.raises(ValueError, match="narrow-float"):
            c.route_rows(cols, backend="native")

    def test_env_flag_disables(self, monkeypatch):
        from repro.classify import native

        monkeypatch.setattr(native, "_tried", False)
        monkeypatch.setattr(native, "_kernel", None)
        monkeypatch.setenv(native.ENV_FLAG, "0")
        assert native.native_kernel() is None
        # restore for other tests
        monkeypatch.setattr(native, "_tried", False)
