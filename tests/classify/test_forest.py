"""CompiledForest IR: differential, backend identity, vote semantics."""

import numpy as np
import pytest

from repro.classify import treegen
from repro.classify.compiled import compiled_for
from repro.classify.forest import (
    CompiledForest,
    compile_forest,
    compile_model,
    predict_forest_oracle,
)
from repro.classify.native import native_available
from repro.core.tree import DecisionTree
from repro.data.schema import Schema, categorical, continuous


def _random_forest(seed, n_trees, max_depth=7):
    rng = np.random.default_rng(seed)
    schema = treegen.random_schema(rng)
    trees = [
        treegen.random_tree(
            schema, max_depth=max_depth, seed=seed * 1000 + t
        )
        for t in range(n_trees)
    ]
    return schema, trees


# -- differential suite: >= 3 datasets x tree counts {1, 8, 32} ---------------

@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("n_trees", [1, 8, 32])
def test_differential_vs_per_tree_oracle_and_vote(seed, n_trees):
    """Forest predictions are bit-identical to per-tree predict_oracle +
    vote, on every backend, across datasets and tree counts."""
    schema, trees = _random_forest(seed, n_trees)
    forest = compile_forest(trees)
    columns = treegen.random_columns(schema, 997, seed=seed + 50, wild=True)
    reference = predict_forest_oracle(trees, columns)
    got_default = forest.predict(columns)
    got_numpy = forest.predict(columns, backend="numpy")
    assert np.array_equal(got_default, reference)
    assert np.array_equal(got_numpy, reference)
    if native_available():
        got_native = forest.predict(columns, backend="native")
        assert np.array_equal(got_native, reference)


def test_vote_tie_breaks_toward_lowest_class_index():
    """An even split between two classes must pick the lower index on
    every backend (the np.argmax rule)."""
    schema = Schema([continuous("x")], class_names=("A", "B"))
    # Tree 0 always predicts class 1, tree 1 always class 0: a 1-1 tie.
    trees = []
    for want in (1, 0):
        base = treegen.random_tree(schema, max_depth=0, seed=want)
        root = base.root
        counts = np.zeros(2, dtype=np.int64)
        counts[want] = 5
        root.class_counts = counts
        trees.append(DecisionTree(schema, root))
    forest = compile_forest(trees)
    columns = {"x": np.linspace(-5, 5, 64)}
    reference = predict_forest_oracle(trees, columns)
    assert set(reference.tolist()) == {0}
    assert np.array_equal(forest.predict(columns, backend="numpy"), reference)
    if native_available():
        assert np.array_equal(
            forest.predict(columns, backend="native"), reference
        )


def test_predict_proba_and_vote_counts():
    schema, trees = _random_forest(7, 8)
    forest = compile_forest(trees)
    columns = treegen.random_columns(schema, 301, seed=8)
    counts = forest.vote_counts(columns)
    assert counts.shape == (301, schema.n_classes)
    assert np.all(counts.sum(axis=1) == 8)
    proba = forest.predict_proba(columns)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert np.array_equal(
        np.argmax(counts, axis=1).astype(np.int32), forest.predict(columns)
    )


def test_single_tree_forest_matches_the_tree():
    schema, trees = _random_forest(11, 1)
    forest = compile_forest(trees)
    columns = treegen.random_columns(schema, 500, seed=12, wild=True)
    assert np.array_equal(
        forest.predict(columns), compiled_for(trees[0]).predict(columns)
    )


# -- structure ---------------------------------------------------------------

def test_concatenated_layout_offsets_and_children():
    schema, trees = _random_forest(13, 5)
    members = [compiled_for(t) for t in trees]
    forest = compile_forest(trees)
    assert forest.n_trees == 5
    assert forest.tree_offsets[0] == 0
    assert forest.tree_offsets[-1] == forest.n_nodes
    assert forest.n_nodes == sum(m.n_nodes for m in members)
    for t, member in enumerate(members):
        start, stop = forest.tree_offsets[t], forest.tree_offsets[t + 1]
        assert stop - start == member.n_nodes
        assert np.array_equal(forest.feature[start:stop], member.feature)
        assert np.array_equal(
            forest.leaf_class[start:stop], member.leaf_class
        )
        # Global children stay inside their own tree's row range.
        span = forest.children2[2 * start:2 * stop]
        assert span.min() >= start and span.max() < stop


def test_used_features_is_union_of_members():
    schema, trees = _random_forest(17, 6)
    forest = compile_forest(trees)
    union = sorted(
        {f for t in trees for f in compiled_for(t).used_features}
    )
    assert forest.used_features == union


def test_mixed_schema_forest_rejected():
    t1, _ = treegen.chain_tree(depth=2, attribute="x")
    t2, _ = treegen.chain_tree(depth=2, attribute="y")
    with pytest.raises(ValueError, match="different schema"):
        compile_forest([t1, t2])


def test_empty_forest_rejected():
    with pytest.raises(ValueError, match="at least one tree"):
        compile_forest([])


# -- model surface -----------------------------------------------------------

def test_compile_model_shapes():
    schema, trees = _random_forest(19, 3)
    tree = trees[0]
    compiled = compiled_for(tree)
    assert compile_model(tree) is compiled
    assert compile_model(compiled) is compiled
    forest = compile_forest(trees)
    assert compile_model(forest) is forest
    assert compile_model(trees).n_trees == 3
    with pytest.raises(TypeError):
        compile_model(42)
    assert compiled.kind == "tree" and compiled.n_trees == 1
    assert forest.kind == "forest"


def test_missing_column_named_in_error():
    schema = Schema(
        [continuous("salary"), categorical("zip", 4)],
        class_names=("A", "B"),
    )
    trees = [
        treegen.random_tree(schema, max_depth=4, seed=s, leaf_prob=0.0)
        for s in (1, 2)
    ]
    forest = compile_forest(trees)
    columns = treegen.random_columns(schema, 10, seed=3)
    used = forest.used_features
    name = schema.attribute_names[used[0]]
    del columns[name]
    with pytest.raises(ValueError, match=name):
        forest.predict(columns)


def test_narrow_float_columns_route_exactly():
    """float32 continuous inputs divert to the exact per-tree routers and
    still match the oracle computed on the same narrow columns."""
    schema = Schema([continuous("x"), continuous("y")],
                    class_names=("A", "B", "C"))
    trees = [
        treegen.random_tree(schema, max_depth=6, seed=s, leaf_prob=0.1)
        for s in (5, 6, 7)
    ]
    forest = compile_forest(trees)
    rng = np.random.default_rng(0)
    columns = {
        "x": rng.uniform(-20, 20, 400).astype(np.float32),
        "y": rng.uniform(-20, 20, 400).astype(np.float32),
    }
    reference = predict_forest_oracle(trees, columns)
    assert np.array_equal(forest.predict(columns), reference)
    if native_available():
        with pytest.raises(ValueError, match="narrow-float"):
            forest.predict(columns, backend="native")


def test_zero_rows():
    schema, trees = _random_forest(23, 4)
    forest = compile_forest(trees)
    empty = {a.name: np.zeros(0) for a in schema.attributes}
    out = forest.predict(empty)
    assert out.shape == (0,) and out.dtype == np.int32
    assert forest.vote_counts(empty).shape == (0, schema.n_classes)


def test_unknown_backend_rejected():
    schema, trees = _random_forest(29, 2)
    forest = compile_forest(trees)
    columns = treegen.random_columns(schema, 8, seed=1)
    with pytest.raises(ValueError, match="unknown backend"):
        forest.predict(columns, backend="cuda")
