"""Unit tests for MDL pruning."""

import numpy as np
import pytest

from repro.classify.metrics import accuracy
from repro.classify.prune import mdl_prune
from repro.core.builder import build_classifier
from repro.data.generator import DatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def noisy_data():
    return generate_dataset(
        DatasetSpec(function=2, n_attributes=9, n_records=2000,
                    seed=5, perturbation=0.08)
    )


class TestMdlPrune:
    def test_returns_new_tree(self, small_f2):
        tree = build_classifier(small_f2).tree
        pruned, report = mdl_prune(tree)
        assert pruned is not tree
        assert tree.n_nodes == report.nodes_before  # original untouched

    def test_never_grows(self, small_f2):
        tree = build_classifier(small_f2).tree
        pruned, report = mdl_prune(tree)
        assert pruned.n_nodes <= tree.n_nodes
        assert report.nodes_removed >= 0

    def test_cost_never_increases(self, noisy_data):
        tree = build_classifier(noisy_data).tree
        _, report = mdl_prune(tree)
        assert report.cost_after <= report.cost_before

    def test_noise_overfit_is_pruned(self, noisy_data):
        """Label noise inflates the tree; MDL shrinks it substantially."""
        tree = build_classifier(noisy_data).tree
        pruned, report = mdl_prune(tree)
        assert pruned.n_nodes < tree.n_nodes

    def test_pruning_helps_generalization(self):
        data = generate_dataset(
            DatasetSpec(function=2, n_attributes=9, n_records=4000,
                        seed=6, perturbation=0.1)
        )
        train, test = data.split(0.7, seed=0)
        tree = build_classifier(train).tree
        pruned, _ = mdl_prune(tree)
        # Pruning must not hurt held-out accuracy materially; usually helps.
        assert accuracy(pruned, test) >= accuracy(tree, test) - 0.01

    def test_single_leaf_unchanged(self, tiny_schema):
        from repro.data.dataset import Dataset

        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0, 2.0]),
             "car": np.array([0, 1], dtype=np.int64)},
            np.array([0, 0], dtype=np.int32),
        )
        tree = build_classifier(pure).tree
        pruned, report = mdl_prune(tree)
        assert pruned.n_nodes == 1
        assert report.pruned_subtrees == 0

    def test_idempotent(self, noisy_data):
        tree = build_classifier(noisy_data).tree
        once, _ = mdl_prune(tree)
        twice, report = mdl_prune(once)
        assert twice.n_nodes == once.n_nodes

    def test_class_counts_preserved(self, small_f2):
        tree = build_classifier(small_f2).tree
        pruned, _ = mdl_prune(tree)
        np.testing.assert_array_equal(
            pruned.root.class_counts, tree.root.class_counts
        )
