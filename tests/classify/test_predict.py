"""Unit and property tests for tree application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.predict import predict, predict_node_ids, predict_one
from repro.core.builder import build_classifier
from repro.data.generator import DatasetSpec, generate_dataset


class TestPredict:
    def test_training_set_high_accuracy(self, small_f2):
        tree = build_classifier(small_f2).tree
        predicted = predict(tree, small_f2)
        assert np.mean(predicted == small_f2.labels) > 0.99

    def test_vectorized_matches_scalar(self, small_f2):
        tree = build_classifier(small_f2).tree
        vector = predict(tree, small_f2)
        for tid in range(0, small_f2.n_records, 37):
            assert vector[tid] == predict_one(tree, small_f2.tuple_at(tid))

    def test_generalization_to_test_split(self):
        data = generate_dataset(DatasetSpec(2, 9, 4000, seed=1))
        train, test = data.split(0.75, seed=2)
        tree = build_classifier(train).tree
        predicted = predict(tree, test)
        assert np.mean(predicted == test.labels) > 0.9

    def test_single_leaf_tree(self, tiny_schema):
        from repro.data.dataset import Dataset

        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0, 2.0]),
             "car": np.array([0, 1], dtype=np.int64)},
            np.array([1, 1], dtype=np.int32),
        )
        tree = build_classifier(pure).tree
        np.testing.assert_array_equal(predict(tree, pure), [1, 1])

    def test_empty_input(self, small_f2):
        tree = build_classifier(small_f2).tree
        cols = {k: v[:0] for k, v in small_f2.columns.items()}
        assert len(predict(tree, cols)) == 0

    def test_accepts_raw_columns(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        out = predict(tree, car_insurance.columns)
        np.testing.assert_array_equal(out, car_insurance.labels)


class TestPredictOne:
    def test_missing_attribute_clear_error(self, small_f2):
        tree = build_classifier(small_f2).tree
        row = dict(small_f2.tuple_at(0))
        victim = tree.root.split.attribute
        del row[victim]
        with pytest.raises(ValueError) as err:
            predict_one(tree, row)
        # The error names both the missing attribute and the model's
        # full attribute list.
        assert victim in str(err.value)
        for name in small_f2.schema.attribute_names:
            assert name in str(err.value)


class TestPredictNodeIds:
    def test_all_ids_are_leaves(self, small_f2):
        tree = build_classifier(small_f2).tree
        leaf_ids = {n.node_id for n in tree.iter_nodes() if n.is_leaf}
        landed = predict_node_ids(tree, small_f2)
        assert set(landed.tolist()) <= leaf_ids

    def test_leaf_populations_match_counts(self, small_f2):
        """Routing the training set reproduces each leaf's record count."""
        tree = build_classifier(small_f2).tree
        landed = predict_node_ids(tree, small_f2)
        for node in tree.iter_nodes():
            if node.is_leaf:
                assert int(np.sum(landed == node.node_id)) == node.n_records


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), function=st.integers(1, 10))
def test_predict_total_on_any_input(seed, function):
    """predict() never fails and always returns valid class indices,
    even on tuples far outside the training distribution."""
    data = generate_dataset(DatasetSpec(function, 9, 200, seed=seed))
    tree = build_classifier(data).tree
    rng = np.random.default_rng(seed)
    wild = {}
    for attr in data.schema.attributes:
        if attr.is_continuous:
            wild[attr.name] = rng.uniform(-1e9, 1e9, 50)
        else:
            wild[attr.name] = rng.integers(0, attr.cardinality, 50)
    out = predict(tree, wild)
    assert out.min() >= 0 and out.max() < data.schema.n_classes
