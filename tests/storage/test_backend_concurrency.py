"""Thread-safety tests for the storage backends under real threads."""

import threading

import numpy as np
import pytest

from repro.sprint.records import CONTINUOUS_RECORD
from repro.storage.backends import DiskBackend, MemoryBackend


def recs(n, start=0):
    out = np.zeros(n, dtype=CONTINUOUS_RECORD)
    out["tid"] = np.arange(start, start + n)
    return out


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        b = MemoryBackend()
    else:
        b = DiskBackend(str(tmp_path / "c.pg"), buffer_capacity=16)
    yield b
    b.close()


class TestConcurrentAccess:
    def test_parallel_writers_distinct_keys(self, backend):
        errors = []

        def writer(tid):
            try:
                for i in range(20):
                    backend.write(f"k{tid}.{i}", recs(25, start=tid * 1000))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(backend.keys()) == 120
        for tid in range(6):
            out = backend.read(f"k{tid}.0")
            assert out["tid"][0] == tid * 1000

    def test_parallel_appenders_same_key(self, backend):
        """Appends from several threads all land (order unspecified)."""
        def appender(tid):
            for _ in range(10):
                backend.append("shared", recs(5, start=tid))

        threads = [
            threading.Thread(target=appender, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(backend.read("shared")) == 200

    def test_readers_and_writers(self, backend):
        backend.write("hot", recs(50))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    out = backend.read("hot")
                    assert len(out) == 50
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        def writer():
            for i in range(50):
                backend.write(f"cold{i}", recs(25))
            stop.set()

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
