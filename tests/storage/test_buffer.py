"""Unit and property tests for the LRU buffer manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.buffer import BufferManager
from repro.storage.pagefile import PageFile


@pytest.fixture
def setup(tmp_path):
    pf = PageFile(str(tmp_path / "b.pg"))
    bm = BufferManager(pf, capacity=3)
    yield pf, bm
    pf.close()


def fill(pf, n):
    ids = []
    for i in range(n):
        pid = pf.allocate()
        pf.write_page(pid, f"v{i}".encode())
        ids.append(pid)
    return ids


class TestBasics:
    def test_get_faults_in(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        assert bm.get(pid) == b"v0"
        assert bm.stats.misses == 1

    def test_second_get_hits(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        bm.get(pid)
        bm.get(pid)
        assert bm.stats.hits == 1
        assert bm.stats.hit_rate == 0.5

    def test_put_then_get_without_disk(self, setup):
        pf, bm = setup
        pid = pf.allocate()
        bm.put(pid, b"fresh")
        assert bm.get(pid) == b"fresh"
        assert bm.stats.misses == 0

    def test_capacity_validated(self, setup):
        pf, _ = setup
        with pytest.raises(ValueError, match="capacity"):
            BufferManager(pf, capacity=0)


class TestEviction:
    def test_lru_victim(self, setup):
        pf, bm = setup
        ids = fill(pf, 4)
        for pid in ids[:3]:
            bm.get(pid)
        bm.get(ids[0])  # refresh 0 -> LRU order is 1, 2, 0
        bm.get(ids[3])  # evicts ids[1]
        assert bm.n_resident == 3
        misses_before = bm.stats.misses
        bm.get(ids[1])  # must re-fault
        assert bm.stats.misses == misses_before + 1

    def test_dirty_eviction_writes_back(self, setup):
        pf, bm = setup
        ids = fill(pf, 4)
        bm.put(ids[0], b"dirty0")
        for pid in ids[1:]:
            bm.get(pid)  # pushes ids[0] out
        bm.clear()
        assert pf.read_page(ids[0]) == b"dirty0"

    def test_pinned_pages_survive(self, setup):
        pf, bm = setup
        ids = fill(pf, 4)
        bm.get(ids[0], pin=True)
        for pid in ids[1:]:
            bm.get(pid)
        # ids[0] pinned: still resident without a disk read.
        misses_before = bm.stats.misses
        bm.get(ids[0])
        assert bm.stats.misses == misses_before
        bm.unpin(ids[0])

    def test_all_pinned_exhausts_pool(self, setup):
        pf, bm = setup
        ids = fill(pf, 4)
        for pid in ids[:3]:
            bm.get(pid, pin=True)
        with pytest.raises(RuntimeError, match="pinned"):
            bm.get(ids[3])

    def test_unpin_unpinned_rejected(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        bm.get(pid)
        with pytest.raises(ValueError, match="not pinned"):
            bm.unpin(pid)


class TestFlushInvalidate:
    def test_flush_single(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        bm.put(pid, b"changed")
        bm.flush(pid)
        assert pf.read_page(pid) == b"changed"

    def test_invalidate_drops_without_writeback(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        bm.put(pid, b"doomed")
        bm.invalidate(pid)
        assert pf.read_page(pid) == b"v0"

    def test_invalidate_pinned_rejected(self, setup):
        pf, bm = setup
        (pid,) = fill(pf, 1)
        bm.get(pid, pin=True)
        with pytest.raises(ValueError, match="pinned"):
            bm.invalidate(pid)
        bm.unpin(pid)

    def test_clear_with_pin_leaves_pool_untouched(self, setup):
        """clear() must validate pins *before* flushing: a failed clear
        may not half-mutate the pool or the page file (regression)."""
        pf, bm = setup
        ids = fill(pf, 2)
        bm.put(ids[0], b"dirty0")
        bm.get(ids[1], pin=True)
        written_before = bm.stats.bytes_written
        with pytest.raises(ValueError, match="pinned"):
            bm.clear()
        assert bm.stats.bytes_written == written_before  # nothing flushed
        assert pf.read_page(ids[0]) == b"v0"  # page file untouched
        assert bm.n_resident == 2  # pool untouched
        bm.unpin(ids[1])
        bm.clear()
        assert pf.read_page(ids[0]) == b"dirty0"
        assert bm.n_resident == 0


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 7)),
        min_size=1,
        max_size=60,
    ),
    capacity=st.integers(1, 5),
)
def test_read_your_writes(tmp_path_factory, ops, capacity):
    """Property: the buffer always returns the latest value written,
    regardless of access pattern, capacity or eviction order."""
    tmp = tmp_path_factory.mktemp("prop")
    with PageFile(str(tmp / "p.pg")) as pf:
        bm = BufferManager(pf, capacity=capacity)
        ids = fill(pf, 8)
        expected = {pid: f"v{i}".encode() for i, pid in enumerate(ids)}
        for i, (op, slot) in enumerate(ops):
            pid = ids[slot]
            if op == "put":
                value = f"w{i}".encode()
                bm.put(pid, value)
                expected[pid] = value
            else:
                assert bm.get(pid) == expected[pid]
        for pid in ids:
            assert bm.get(pid) == expected[pid]
