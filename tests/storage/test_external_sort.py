"""Tests for the external merge sort and ranged backend reads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sprint.records import CONTINUOUS_RECORD
from repro.storage.backends import DiskBackend, MemoryBackend
from repro.storage.external_sort import external_sort


def random_records(n, seed=0):
    rng = np.random.default_rng(seed)
    out = np.zeros(n, dtype=CONTINUOUS_RECORD)
    out["value"] = rng.integers(0, max(n // 3, 2), n).astype(np.float64)
    out["cls"] = rng.integers(0, 2, n)
    out["tid"] = rng.permutation(n)
    return out


def reference_sort(records):
    return records[np.lexsort((records["tid"], records["value"]))]


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        b = MemoryBackend()
    else:
        b = DiskBackend(str(tmp_path / "es.pg"), buffer_capacity=8)
    yield b
    b.close()


class TestReadRange:
    def test_slice_semantics(self, backend):
        data = random_records(100)
        backend.write("k", data)
        np.testing.assert_array_equal(
            backend.read_range("k", 10, 25), data[10:25]
        )

    def test_clamped_bounds(self, backend):
        data = random_records(10)
        backend.write("k", data)
        assert len(backend.read_range("k", 5, 500)) == 5
        assert len(backend.read_range("k", 500, 600)) == 0

    def test_across_page_boundaries(self, tmp_path):
        b = DiskBackend(str(tmp_path / "pages.pg"))
        data = random_records(3000)  # spans many 8 KB pages
        b.write("k", data)
        np.testing.assert_array_equal(
            b.read_range("k", 1500, 1700), data[1500:1700]
        )
        b.close()

    def test_n_records(self, backend):
        backend.write("k", random_records(42))
        assert backend.n_records("k") == 42
        assert backend.n_records("absent") == 0


class TestExternalSort:
    def test_matches_in_memory_sort(self, backend):
        data = random_records(500, seed=1)
        backend.write("in", data)
        stats = external_sort(backend, "in", "out", memory_records=64)
        np.testing.assert_array_equal(
            backend.read("out"), reference_sort(data)
        )
        assert stats.n_runs == -(-500 // 64)

    def test_single_run_shortcut(self, backend):
        data = random_records(50, seed=2)
        backend.write("in", data)
        stats = external_sort(backend, "in", "out", memory_records=100)
        assert stats.n_runs == 1
        np.testing.assert_array_equal(
            backend.read("out"), reference_sort(data)
        )

    def test_runs_cleaned_up(self, backend):
        backend.write("in", random_records(300, seed=3))
        external_sort(backend, "in", "out", memory_records=50)
        assert not any(".run" in k for k in backend.keys())

    def test_input_untouched(self, backend):
        data = random_records(200, seed=4)
        backend.write("in", data)
        external_sort(backend, "in", "out", memory_records=32)
        np.testing.assert_array_equal(backend.read("in"), data)

    def test_empty_input(self, backend):
        backend.write("in", random_records(0))
        stats = external_sort(backend, "in", "out", memory_records=10)
        assert stats.n_records == 0
        assert len(backend.read("out")) == 0

    def test_missing_input(self, backend):
        with pytest.raises(KeyError):
            external_sort(backend, "ghost", "out", memory_records=10)

    def test_memory_budget_validated(self, backend):
        backend.write("in", random_records(5))
        with pytest.raises(ValueError, match="memory_records"):
            external_sort(backend, "in", "out", memory_records=1)

    def test_in_place_sort_same_key(self, backend):
        """input_key == output_key: the merge must capture the dtype
        before it deletes/recreates the output (regression: KeyError)."""
        data = random_records(300, seed=6)
        backend.write("k", data)
        stats = external_sort(backend, "k", "k", memory_records=32)
        assert stats.n_runs > 1  # exercises the merge path, not the shortcut
        np.testing.assert_array_equal(backend.read("k"), reference_sort(data))
        assert not any(".run" in k for k in backend.keys())

    def test_in_place_single_run(self, backend):
        data = random_records(20, seed=7)
        backend.write("k", data)
        external_sort(backend, "k", "k", memory_records=64)
        np.testing.assert_array_equal(backend.read("k"), reference_sort(data))

    def test_int64_values_beyond_2_53(self, backend):
        """Merge-heap keys must stay native numpy scalars: casting int64
        category codes through float() collapses 2**53 and 2**53 + 1 to
        the same key and breaks the strict (value, tid) order."""
        from repro.sprint.records import CATEGORICAL_RECORD

        data = np.zeros(4, dtype=CATEGORICAL_RECORD)
        # Run 1 holds the *larger* values with the *smaller* tids, so a
        # float-collapsed comparison falls through to the tid tiebreak
        # and emits them first.
        data["value"] = [2**53 + 1, 2**53 + 1, 2**53, 2**53]
        data["tid"] = [0, 1, 2, 3]
        backend.write("in", data)
        external_sort(backend, "in", "out", memory_records=2)
        out = backend.read("out")
        np.testing.assert_array_equal(
            out["value"], [2**53, 2**53, 2**53 + 1, 2**53 + 1]
        )
        np.testing.assert_array_equal(out["tid"], [2, 3, 0, 1])

    def test_stable_on_duplicate_values(self, backend):
        """Equal values order by tid — the determinism SPRINT relies on."""
        data = np.zeros(100, dtype=CONTINUOUS_RECORD)
        data["value"] = 7.0
        data["tid"] = np.random.default_rng(5).permutation(100)
        backend.write("in", data)
        external_sort(backend, "in", "out", memory_records=16)
        out = backend.read("out")
        np.testing.assert_array_equal(out["tid"], np.arange(100))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(0, 400),
    memory=st.integers(2, 64),
    seed=st.integers(0, 10_000),
)
def test_external_sort_property(n, memory, seed):
    """Property: output == in-memory lexsort for any size/budget."""
    backend = MemoryBackend()
    data = random_records(n, seed=seed)
    backend.write("in", data)
    external_sort(backend, "in", "out", memory_records=memory)
    np.testing.assert_array_equal(backend.read("out"), reference_sort(data))
