"""Spill-directory lifecycle: tracked, released, atexit-swept."""

from __future__ import annotations

import atexit
import os

from repro.storage import temp


class TestSpillDirs:
    def test_create_and_release(self):
        path = temp.create_spill_dir()
        assert os.path.isdir(path)
        assert path in temp.live_spill_dirs()
        temp.release_spill_dir(path)
        assert not os.path.exists(path)
        assert path not in temp.live_spill_dirs()

    def test_release_tolerates_contents(self):
        path = temp.create_spill_dir()
        with open(os.path.join(path, "pages"), "wb") as f:
            f.write(b"x" * 128)
        temp.release_spill_dir(path)
        assert not os.path.exists(path)

    def test_context_manager(self):
        with temp.spill_dir() as path:
            assert os.path.isdir(path)
        assert not os.path.exists(path)

    def test_atexit_hook_registered(self):
        # The sweep function exists and is idempotent when nothing leaks.
        temp._cleanup_at_exit()
        assert temp.live_spill_dirs() == set()

    def test_cleanup_sweeps_leaked_dirs(self):
        path = temp.create_spill_dir()
        temp._cleanup_at_exit()
        assert not os.path.exists(path)
        assert temp.live_spill_dirs() == set()
