"""Unit tests for the checksummed page file."""

import os

import pytest

from repro.storage.pagefile import (
    PAGE_PAYLOAD,
    PAGE_SIZE,
    PageCorruptionError,
    PageFile,
)


@pytest.fixture
def pf(tmp_path):
    with PageFile(str(tmp_path / "data.pg")) as f:
        yield f


class TestAllocation:
    def test_allocate_sequential(self, pf):
        assert [pf.allocate() for _ in range(3)] == [0, 1, 2]
        assert pf.n_pages == 3

    def test_free_reuse(self, pf):
        a = pf.allocate()
        pf.allocate()
        pf.free(a)
        assert pf.allocate() == a

    def test_double_free_rejected(self, pf):
        a = pf.allocate()
        pf.free(a)
        with pytest.raises(ValueError, match="already freed"):
            pf.free(a)

    def test_free_out_of_range(self, pf):
        with pytest.raises(ValueError, match="out of range"):
            pf.free(0)

    def test_truncate(self, pf):
        pf.allocate()
        pf.truncate()
        assert pf.n_pages == 0


class TestReadWrite:
    def test_round_trip(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"hello sprint")
        assert pf.read_page(pid) == b"hello sprint"

    def test_empty_payload(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"")
        assert pf.read_page(pid) == b""

    def test_full_payload(self, pf):
        pid = pf.allocate()
        payload = bytes(range(256)) * (PAGE_PAYLOAD // 256 + 1)
        payload = payload[:PAGE_PAYLOAD]
        pf.write_page(pid, payload)
        assert pf.read_page(pid) == payload

    def test_oversized_payload_rejected(self, pf):
        pid = pf.allocate()
        with pytest.raises(ValueError, match="exceeds page capacity"):
            pf.write_page(pid, b"x" * (PAGE_PAYLOAD + 1))

    def test_overwrite(self, pf):
        pid = pf.allocate()
        pf.write_page(pid, b"first")
        pf.write_page(pid, b"second")
        assert pf.read_page(pid) == b"second"

    def test_many_pages_independent(self, pf):
        pids = [pf.allocate() for _ in range(10)]
        for i, pid in enumerate(pids):
            pf.write_page(pid, f"page-{i}".encode())
        for i, pid in enumerate(pids):
            assert pf.read_page(pid) == f"page-{i}".encode()


class TestCorruption:
    def test_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "c.pg")
        with PageFile(path) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"precious data")
        # Flip a payload byte on disk.
        with open(path, "r+b") as f:
            f.seek(20)
            byte = f.read(1)
            f.seek(20)
            f.write(bytes([byte[0] ^ 0xFF]))
        with PageFile(path, create=False) as pf:
            pf._n_pages = 1
            with pytest.raises(PageCorruptionError, match="checksum"):
                pf.read_page(0)

    def test_bad_magic_detected(self, tmp_path):
        path = str(tmp_path / "m.pg")
        with open(path, "wb") as f:
            f.write(b"\x00" * PAGE_SIZE)
        with PageFile(path, create=False) as pf:
            with pytest.raises(PageCorruptionError, match="magic"):
                pf.read_page(0)


class TestLifecycle:
    def test_closed_file_rejects_io(self, tmp_path):
        pf = PageFile(str(tmp_path / "x.pg"))
        pid = pf.allocate()
        pf.write_page(pid, b"data")
        pf.close()
        with pytest.raises(ValueError, match="closed"):
            pf.read_page(pid)

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.pg")
        with PageFile(path) as pf:
            pid = pf.allocate()
            pf.write_page(pid, b"durable")
        with PageFile(path, create=False) as pf:
            assert pf.n_pages == 1
            assert pf.read_page(pid) == b"durable"
