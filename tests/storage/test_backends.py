"""Unit tests for the record-array storage backends."""

import numpy as np
import pytest

from repro.sprint.records import CATEGORICAL_RECORD, CONTINUOUS_RECORD
from repro.storage.backends import DiskBackend, MemoryBackend


def recs(n, dtype=CONTINUOUS_RECORD, start=0):
    out = np.zeros(n, dtype=dtype)
    out["value"] = np.arange(start, start + n)
    out["cls"] = np.arange(n) % 2
    out["tid"] = np.arange(start, start + n)
    return out


@pytest.fixture(params=["memory", "disk"])
def backend(request, tmp_path):
    if request.param == "memory":
        b = MemoryBackend()
    else:
        b = DiskBackend(str(tmp_path / "store.pg"), buffer_capacity=8)
    yield b
    b.close()


class TestRoundTrip:
    def test_write_read(self, backend):
        data = recs(100)
        backend.write("k", data)
        np.testing.assert_array_equal(backend.read("k"), data)

    def test_overwrite(self, backend):
        backend.write("k", recs(10))
        backend.write("k", recs(5, start=100))
        out = backend.read("k")
        assert len(out) == 5
        assert out["tid"][0] == 100

    def test_append_concatenates(self, backend):
        backend.append("k", recs(3))
        backend.append("k", recs(2, start=10))
        out = backend.read("k")
        assert len(out) == 5
        np.testing.assert_array_equal(out["tid"], [0, 1, 2, 10, 11])

    def test_empty_records(self, backend):
        backend.write("k", recs(0))
        assert len(backend.read("k")) == 0

    def test_categorical_dtype(self, backend):
        data = recs(20, dtype=CATEGORICAL_RECORD)
        backend.write("k", data)
        out = backend.read("k")
        assert out.dtype == CATEGORICAL_RECORD
        np.testing.assert_array_equal(out, data)

    def test_large_multi_page_array(self, backend):
        data = recs(5000)  # ~100 KB: spans many pages on disk
        backend.write("big", data)
        np.testing.assert_array_equal(backend.read("big"), data)


class TestKeys:
    def test_missing_key(self, backend):
        with pytest.raises(KeyError):
            backend.read("missing")

    def test_exists(self, backend):
        assert not backend.exists("k")
        backend.write("k", recs(1))
        assert backend.exists("k")

    def test_delete(self, backend):
        backend.write("k", recs(1))
        backend.delete("k")
        assert not backend.exists("k")
        with pytest.raises(KeyError):
            backend.read("k")

    def test_delete_missing_is_noop(self, backend):
        backend.delete("never-existed")

    def test_keys_listing(self, backend):
        backend.write("a", recs(1))
        backend.write("b", recs(1))
        assert sorted(backend.keys()) == ["a", "b"]

    def test_nbytes(self, backend):
        data = recs(10)
        backend.write("k", data)
        assert backend.nbytes("k") == data.nbytes
        assert backend.nbytes("other") == 0

    def test_independent_keys(self, backend):
        backend.write("a", recs(3))
        backend.write("b", recs(7, start=50))
        assert len(backend.read("a")) == 3
        assert len(backend.read("b")) == 7


class TestDiskSpecifics:
    def test_stats_track_bytes(self, tmp_path):
        b = DiskBackend(str(tmp_path / "s.pg"))
        data = recs(100)
        b.write("k", data)
        b.read("k")
        assert b.stats.bytes_written == data.nbytes
        assert b.stats.bytes_read == data.nbytes
        b.close()

    def test_pages_reused_after_delete(self, tmp_path):
        b = DiskBackend(str(tmp_path / "r.pg"))
        b.write("k", recs(1000))
        pages_before = b._pagefile.n_pages
        b.delete("k")
        b.write("k2", recs(1000))
        assert b._pagefile.n_pages == pages_before  # free list reused
        b.close()

    def test_append_dtype_mismatch_rejected(self, tmp_path):
        b = DiskBackend(str(tmp_path / "d.pg"))
        b.append("k", recs(5, dtype=CONTINUOUS_RECORD))
        other = np.zeros(5, dtype=np.dtype([("value", np.int16)]))
        with pytest.raises(ValueError, match="dtype"):
            b.append("k", other)
        b.close()
