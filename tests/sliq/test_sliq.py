"""Tests for the SLIQ classifier, including the SPRINT cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.metrics import accuracy
from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.data.generator import DatasetSpec, generate_dataset
from repro.sliq import build_sliq
from repro.sliq.classifier import _ClassList
from repro.core.tree import Node


class TestClassList:
    def test_initial_assignment(self):
        labels = np.array([0, 1, 0], dtype=np.int32)
        root = Node(0, 0, np.array([2, 1]))
        cl = _ClassList(labels, root)
        np.testing.assert_array_equal(cl.tuples_of(0), [0, 1, 2])

    def test_reassign(self):
        labels = np.zeros(4, dtype=np.int32)
        root = Node(0, 0, np.array([4, 0]))
        cl = _ClassList(labels, root)
        cl.reassign(np.array([1, 3]), 1)
        np.testing.assert_array_equal(cl.tuples_of(1), [1, 3])
        np.testing.assert_array_equal(cl.tuples_of(0), [0, 2])


class TestSliqEqualsSprint:
    """The headline cross-check: two independent classifier
    implementations must agree on every split."""

    @pytest.mark.parametrize("function", [1, 2, 3, 5, 7, 9])
    def test_tree_identity(self, function):
        data = generate_dataset(
            DatasetSpec(function, 9, 700, seed=11)
        )
        sprint = build_classifier(data, algorithm="serial").tree
        sliq = build_sliq(data)
        assert sliq.signature() == sprint.signature()

    def test_with_depth_limit(self, small_f7):
        params = BuildParams(max_depth=4)
        sprint = build_classifier(
            small_f7, algorithm="serial", params=params
        ).tree
        sliq = build_sliq(small_f7, params)
        assert sliq.signature() == sprint.signature()

    def test_with_min_records(self, small_f7):
        params = BuildParams(min_split_records=30)
        sprint = build_classifier(
            small_f7, algorithm="serial", params=params
        ).tree
        sliq = build_sliq(small_f7, params)
        assert sliq.signature() == sprint.signature()

    def test_car_insurance(self, car_insurance):
        sliq = build_sliq(car_insurance)
        assert sliq.root.split.attribute == "age"
        assert sliq.root.split.threshold == pytest.approx(27.5)


class TestSliqBehaviour:
    def test_accuracy(self, small_f2):
        tree = build_sliq(small_f2)
        assert accuracy(tree, small_f2) > 0.99

    def test_pure_root(self, tiny_schema):
        from repro.data.dataset import Dataset

        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0, 2.0]),
             "car": np.array([0, 1], dtype=np.int64)},
            np.array([1, 1], dtype=np.int32),
        )
        tree = build_sliq(pure)
        assert tree.root.is_leaf

    def test_empty_rejected(self, tiny_schema):
        from repro.data.dataset import Dataset

        empty = Dataset(
            tiny_schema,
            {"age": np.array([]), "car": np.array([], dtype=np.int64)},
            np.array([], dtype=np.int32),
        )
        with pytest.raises(ValueError, match="empty"):
            build_sliq(empty)

    def test_class_counts_partition(self, small_f2):
        tree = build_sliq(small_f2)
        for node in tree.iter_nodes():
            if not node.is_leaf:
                np.testing.assert_array_equal(
                    node.class_counts,
                    node.left.class_counts + node.right.class_counts,
                )


@settings(max_examples=15, deadline=None)
@given(
    function=st.integers(1, 10),
    n_records=st.integers(20, 250),
    seed=st.integers(0, 5000),
)
def test_sliq_sprint_identity_property(function, n_records, seed):
    """Property: SLIQ == SPRINT on arbitrary Quest data."""
    data = generate_dataset(DatasetSpec(function, 9, n_records, seed=seed))
    sprint = build_classifier(data, algorithm="serial").tree
    sliq = build_sliq(data)
    assert sliq.signature() == sprint.signature()
