"""Unit tests for dataset persistence (NPZ and CSV)."""

import numpy as np
import pytest

from repro.data.io import (
    load_dataset_csv,
    load_dataset_npz,
    save_dataset_csv,
    save_dataset_npz,
)


class TestNpz:
    def test_lossless_round_trip(self, small_f2, tmp_path):
        path = str(tmp_path / "d.npz")
        save_dataset_npz(small_f2, path)
        restored = load_dataset_npz(path)
        assert restored.name == small_f2.name
        np.testing.assert_array_equal(restored.labels, small_f2.labels)
        for name in small_f2.columns:
            np.testing.assert_array_equal(
                restored.columns[name], small_f2.columns[name]
            )
            assert restored.columns[name].dtype == small_f2.columns[name].dtype

    def test_schema_round_trip(self, car_insurance, tmp_path):
        path = str(tmp_path / "c.npz")
        save_dataset_npz(car_insurance, path)
        restored = load_dataset_npz(path)
        assert restored.schema.class_names == ("high", "low")
        assert restored.schema.attribute("car_type").cardinality == 3


class TestCsv:
    def test_round_trip_with_sidecar(self, car_insurance, tmp_path):
        path = str(tmp_path / "c.csv")
        save_dataset_csv(car_insurance, path)
        restored = load_dataset_csv(path)
        np.testing.assert_array_equal(restored.labels, car_insurance.labels)
        np.testing.assert_allclose(
            restored.columns["age"], car_insurance.columns["age"]
        )
        np.testing.assert_array_equal(
            restored.columns["car_type"], car_insurance.columns["car_type"]
        )

    def test_explicit_schema(self, car_insurance, tmp_path):
        path = str(tmp_path / "c.csv")
        save_dataset_csv(car_insurance, path)
        restored = load_dataset_csv(path, schema=car_insurance.schema)
        assert restored.n_records == car_insurance.n_records

    def test_missing_sidecar(self, tmp_path):
        path = str(tmp_path / "orphan.csv")
        with open(path, "w") as f:
            f.write("a,class\n1,x\n")
        with pytest.raises(FileNotFoundError, match="sidecar"):
            load_dataset_csv(path)

    def test_header_mismatch(self, car_insurance, tiny_schema, tmp_path):
        path = str(tmp_path / "c.csv")
        save_dataset_csv(car_insurance, path)
        with pytest.raises(ValueError, match="header"):
            load_dataset_csv(path, schema=tiny_schema)

    def test_human_readable_labels(self, car_insurance, tmp_path):
        path = str(tmp_path / "c.csv")
        save_dataset_csv(car_insurance, path)
        text = open(path).read()
        assert "high" in text and "low" in text
