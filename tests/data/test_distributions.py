"""Statistical checks on the Quest generator's attribute distributions."""

import numpy as np
import pytest

from repro.data.generator import DatasetSpec, generate_dataset


@pytest.fixture(scope="module")
def big():
    return generate_dataset(DatasetSpec(1, 12, 30_000, seed=99))


class TestRanges:
    def test_salary(self, big):
        s = big.columns["salary"]
        assert s.min() >= 20_000 and s.max() <= 150_000

    def test_age(self, big):
        a = big.columns["age"]
        assert a.min() >= 20 and a.max() <= 80

    def test_loan(self, big):
        loan = big.columns["loan"]
        assert loan.min() >= 0 and loan.max() <= 500_000

    def test_hyears(self, big):
        h = big.columns["hyears"]
        assert h.min() >= 1 and h.max() <= 30


class TestMoments:
    def test_salary_uniform_mean(self, big):
        assert abs(big.columns["salary"].mean() - 85_000) < 1_500

    def test_age_uniform_mean(self, big):
        assert abs(big.columns["age"].mean() - 50) < 0.7

    def test_elevel_frequencies(self, big):
        counts = np.bincount(big.columns["elevel"], minlength=5)
        expected = len(big.labels) / 5
        assert np.all(np.abs(counts - expected) < expected * 0.1)

    def test_zipcode_frequencies(self, big):
        counts = np.bincount(big.columns["zipcode"], minlength=9)
        expected = len(big.labels) / 9
        assert np.all(np.abs(counts - expected) < expected * 0.15)


class TestStructure:
    def test_commission_zero_iff_high_salary(self, big):
        salary = big.columns["salary"]
        commission = big.columns["commission"]
        high = salary >= 75_000
        assert np.all(commission[high] == 0)
        assert np.all(commission[~high] > 0)

    def test_function1_class_balance(self, big):
        """F1 puts age<40 or age>=60 in group A: 2/3 of a uniform age."""
        frac_a = float(np.mean(big.labels == 0))
        assert abs(frac_a - 2 / 3) < 0.02

    def test_padding_carries_no_signal(self, big):
        """Noise attributes are independent of the label (correlation
        indistinguishable from zero at this sample size)."""
        pad = big.columns["pad_c000"]
        corr = np.corrcoef(pad, big.labels)[0, 1]
        assert abs(corr) < 0.02
