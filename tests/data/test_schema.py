"""Unit tests for attribute/schema descriptions."""

import pytest

from repro.data.schema import (
    Attribute,
    AttributeKind,
    Schema,
    categorical,
    continuous,
)


class TestAttribute:
    def test_continuous(self):
        a = continuous("salary")
        assert a.is_continuous and not a.is_categorical
        assert a.cardinality is None

    def test_categorical(self):
        a = categorical("car", 20)
        assert a.is_categorical and not a.is_continuous
        assert a.cardinality == 20

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Attribute("", AttributeKind.CONTINUOUS)

    def test_categorical_needs_cardinality(self):
        with pytest.raises(ValueError, match="cardinality"):
            Attribute("c", AttributeKind.CATEGORICAL)

    def test_categorical_cardinality_minimum(self):
        with pytest.raises(ValueError, match="cardinality"):
            Attribute("c", AttributeKind.CATEGORICAL, 1)

    def test_continuous_rejects_cardinality(self):
        with pytest.raises(ValueError, match="must not set cardinality"):
            Attribute("x", AttributeKind.CONTINUOUS, 5)

    def test_frozen(self):
        a = continuous("x")
        with pytest.raises(AttributeError):
            a.name = "y"


class TestSchema:
    def test_basic(self, tiny_schema):
        assert tiny_schema.n_attributes == 2
        assert tiny_schema.n_classes == 2
        assert tiny_schema.attribute_names == ["age", "car"]

    def test_index_of(self, tiny_schema):
        assert tiny_schema.index_of("age") == 0
        assert tiny_schema.index_of("car") == 1

    def test_index_of_missing(self, tiny_schema):
        with pytest.raises(KeyError):
            tiny_schema.index_of("nope")

    def test_attribute_lookup(self, tiny_schema):
        assert tiny_schema.attribute("car").cardinality == 3

    def test_class_index(self, tiny_schema):
        assert tiny_schema.class_index("yes") == 0
        assert tiny_schema.class_index("no") == 1

    def test_class_index_missing(self, tiny_schema):
        with pytest.raises(KeyError):
            tiny_schema.class_index("maybe")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError, match="duplicate attribute"):
            Schema([continuous("x"), continuous("x")])

    def test_duplicate_classes_rejected(self):
        with pytest.raises(ValueError, match="duplicate class"):
            Schema([continuous("x")], class_names=("a", "a"))

    def test_needs_attributes(self):
        with pytest.raises(ValueError, match="at least one attribute"):
            Schema([])

    def test_needs_two_classes(self):
        with pytest.raises(ValueError, match="two classes"):
            Schema([continuous("x")], class_names=("only",))
