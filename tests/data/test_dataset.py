"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.generator import DatasetSpec, generate_dataset
from repro.data.schema import Attribute, AttributeKind, Schema


def make(schema, columns, labels):
    return Dataset(schema, columns, np.asarray(labels, dtype=np.int32))


class TestValidation:
    def test_missing_column(self, tiny_schema):
        with pytest.raises(ValueError, match="missing"):
            make(tiny_schema, {"age": np.zeros(2)}, [0, 1])

    def test_extra_column(self, tiny_schema):
        cols = {
            "age": np.zeros(2),
            "car": np.zeros(2, dtype=np.int64),
            "oops": np.zeros(2),
        }
        with pytest.raises(ValueError, match="extra"):
            make(tiny_schema, cols, [0, 1])

    def test_length_mismatch(self, tiny_schema):
        cols = {"age": np.zeros(3), "car": np.zeros(2, dtype=np.int64)}
        with pytest.raises(ValueError, match="rows"):
            make(tiny_schema, cols, [0, 1])

    def test_label_out_of_range(self, tiny_schema):
        cols = {"age": np.zeros(2), "car": np.zeros(2, dtype=np.int64)}
        with pytest.raises(ValueError, match="label"):
            make(tiny_schema, cols, [0, 2])

    def test_categorical_code_out_of_range(self, tiny_schema):
        cols = {"age": np.zeros(2), "car": np.array([0, 3], dtype=np.int64)}
        with pytest.raises(ValueError, match="codes outside"):
            make(tiny_schema, cols, [0, 1])

    def test_non_1d_column(self, tiny_schema):
        cols = {
            "age": np.zeros((2, 1)),
            "car": np.zeros(2, dtype=np.int64),
        }
        with pytest.raises(ValueError, match="1-D"):
            make(tiny_schema, cols, [0, 1])


class TestAccessors:
    def test_tuple_at(self, car_insurance):
        t = car_insurance.tuple_at(3)
        assert t["age"] == 68.0 and t["car_type"] == 0

    def test_iter_tuples(self, car_insurance):
        tuples = list(car_insurance.iter_tuples())
        assert len(tuples) == car_insurance.n_records
        assert tuples[0]["age"] == 23.0

    def test_class_name_of(self, car_insurance):
        assert car_insurance.class_name_of(0) == "high"
        assert car_insurance.class_name_of(3) == "low"

    def test_class_histogram(self, car_insurance):
        np.testing.assert_array_equal(
            car_insurance.class_histogram(), [4, 2]
        )

    def test_nbytes_positive(self, car_insurance):
        assert car_insurance.nbytes > 0


class TestTakeAndSplit:
    def test_take_order(self, car_insurance):
        sub = car_insurance.take(np.array([3, 0]))
        assert sub.n_records == 2
        assert sub.columns["age"][0] == 68.0
        assert sub.columns["age"][1] == 23.0

    def test_split_partitions(self):
        data = generate_dataset(DatasetSpec(2, 9, 1000, seed=0))
        train, test = data.split(0.8, seed=1)
        assert train.n_records == 800
        assert test.n_records == 200

    def test_split_deterministic(self):
        data = generate_dataset(DatasetSpec(2, 9, 500, seed=0))
        a_train, _ = data.split(0.7, seed=5)
        b_train, _ = data.split(0.7, seed=5)
        np.testing.assert_array_equal(a_train.labels, b_train.labels)

    def test_split_fraction_validated(self, car_insurance):
        with pytest.raises(ValueError, match="fraction"):
            car_insurance.split(1.0)
