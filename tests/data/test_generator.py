"""Unit and property tests for the Quest data generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.functions import quest_function
from repro.data.generator import (
    BASE_ATTRIBUTE_NAMES,
    DatasetSpec,
    generate_dataset,
    quest_schema,
)


class TestDatasetSpec:
    def test_name(self):
        assert DatasetSpec(2, 32, 250_000).name == "F2-A32-D250K"

    def test_name_non_round(self):
        assert DatasetSpec(7, 9, 1234).name == "F7-A9-D1234"

    @pytest.mark.parametrize("bad", [0, 11])
    def test_function_range(self, bad):
        with pytest.raises(ValueError, match="function"):
            DatasetSpec(function=bad)

    def test_too_few_attributes(self):
        with pytest.raises(ValueError, match="n_attributes"):
            DatasetSpec(n_attributes=5)

    def test_records_positive(self):
        with pytest.raises(ValueError, match="n_records"):
            DatasetSpec(n_records=0)

    def test_perturbation_range(self):
        with pytest.raises(ValueError, match="perturbation"):
            DatasetSpec(perturbation=1.0)


class TestQuestSchema:
    def test_base_schema(self):
        schema = quest_schema(9)
        assert schema.attribute_names == list(BASE_ATTRIBUTE_NAMES)

    def test_padding_alternates_kinds(self):
        schema = quest_schema(13)
        pads = schema.attributes[9:]
        assert [a.is_continuous for a in pads] == [True, False, True, False]

    def test_categorical_cardinalities(self):
        schema = quest_schema(9)
        assert schema.attribute("elevel").cardinality == 5
        assert schema.attribute("car").cardinality == 20
        assert schema.attribute("zipcode").cardinality == 9


class TestGenerate:
    def test_shape_and_names(self):
        data = generate_dataset(DatasetSpec(2, 12, 500, seed=1))
        assert data.n_records == 500
        assert data.n_attributes == 12
        assert data.name == "F2-A12-D500"

    def test_deterministic_by_seed(self):
        a = generate_dataset(DatasetSpec(3, 9, 300, seed=5))
        b = generate_dataset(DatasetSpec(3, 9, 300, seed=5))
        for name in a.columns:
            np.testing.assert_array_equal(a.columns[name], b.columns[name])
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_dataset(DatasetSpec(3, 9, 300, seed=5))
        b = generate_dataset(DatasetSpec(3, 9, 300, seed=6))
        assert not np.array_equal(a.columns["salary"], b.columns["salary"])

    def test_labels_match_function(self):
        data = generate_dataset(DatasetSpec(7, 9, 400, seed=2))
        expected = np.where(quest_function(7)(data.columns), 0, 1)
        np.testing.assert_array_equal(data.labels, expected)

    def test_commission_rule(self):
        data = generate_dataset(DatasetSpec(1, 9, 2000, seed=9))
        salary = data.columns["salary"]
        commission = data.columns["commission"]
        assert np.all(commission[salary >= 75_000] == 0)
        low = commission[salary < 75_000]
        assert np.all((low >= 10_000) & (low <= 75_000))

    def test_hvalue_depends_on_zipcode(self):
        data = generate_dataset(DatasetSpec(1, 9, 5000, seed=9))
        z = data.columns["zipcode"]
        hv = data.columns["hvalue"]
        k = (z + 1).astype(float)
        assert np.all(hv >= 0.5 * k * 100_000)
        assert np.all(hv <= 1.5 * k * 100_000)

    def test_perturbation_flips_labels(self):
        clean = generate_dataset(DatasetSpec(2, 9, 4000, seed=4))
        noisy = generate_dataset(
            DatasetSpec(2, 9, 4000, seed=4, perturbation=0.3)
        )
        flipped = np.mean(clean.labels != noisy.labels)
        assert 0.2 < flipped < 0.4

    def test_padding_values_in_range(self):
        data = generate_dataset(DatasetSpec(2, 12, 300, seed=8))
        schema = data.schema
        for attr in schema.attributes[9:]:
            col = data.columns[attr.name]
            if attr.is_categorical:
                assert col.min() >= 0 and col.max() < attr.cardinality


@settings(max_examples=25, deadline=None)
@given(
    function=st.integers(1, 10),
    n_attributes=st.integers(9, 20),
    n_records=st.integers(1, 200),
    seed=st.integers(0, 2**31),
)
def test_generator_always_valid(function, n_attributes, n_records, seed):
    """Any spec yields an internally consistent dataset."""
    data = generate_dataset(
        DatasetSpec(function, n_attributes, n_records, seed=seed)
    )
    assert data.n_records == n_records
    assert set(data.columns) == set(data.schema.attribute_names)
    assert data.labels.min() >= 0 and data.labels.max() <= 1
