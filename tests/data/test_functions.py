"""Unit tests for the ten Quest classification functions."""

import numpy as np
import pytest

from repro.data.functions import QUEST_FUNCTIONS, quest_function


def cols(**overrides):
    """A single-tuple column set with neutral defaults."""
    base = {
        "salary": 100_000.0,
        "commission": 0.0,
        "age": 30.0,
        "elevel": 0,
        "car": 0,
        "zipcode": 0,
        "hvalue": 100_000.0,
        "hyears": 10.0,
        "loan": 0.0,
    }
    base.update(overrides)
    return {k: np.array([v]) for k, v in base.items()}


def in_group_a(fn, **overrides) -> bool:
    return bool(quest_function(fn)(cols(**overrides))[0])


class TestFunction1:
    def test_young_is_a(self):
        assert in_group_a(1, age=25)

    def test_old_is_a(self):
        assert in_group_a(1, age=65)

    def test_middle_is_b(self):
        assert not in_group_a(1, age=50)

    def test_boundaries(self):
        assert not in_group_a(1, age=40)
        assert in_group_a(1, age=60)


class TestFunction2:
    @pytest.mark.parametrize(
        "age,salary,expected",
        [
            (30, 75_000, True),
            (30, 40_000, False),
            (30, 110_000, False),
            (50, 100_000, True),
            (50, 60_000, False),
            (70, 50_000, True),
            (70, 100_000, False),
        ],
    )
    def test_bands(self, age, salary, expected):
        assert in_group_a(2, age=age, salary=salary) is expected


class TestFunction3:
    def test_young_low_education(self):
        assert in_group_a(3, age=30, elevel=0)
        assert in_group_a(3, age=30, elevel=1)
        assert not in_group_a(3, age=30, elevel=2)

    def test_old_high_education(self):
        assert in_group_a(3, age=70, elevel=4)
        assert not in_group_a(3, age=70, elevel=1)


class TestFunction4:
    def test_young_low_elevel_uses_low_band(self):
        assert in_group_a(4, age=30, elevel=0, salary=50_000)
        assert not in_group_a(4, age=30, elevel=0, salary=90_000)

    def test_young_high_elevel_uses_high_band(self):
        assert in_group_a(4, age=30, elevel=3, salary=90_000)
        assert not in_group_a(4, age=30, elevel=3, salary=30_000)


class TestFunction5:
    def test_loan_band_depends_on_salary(self):
        assert in_group_a(5, age=30, salary=75_000, loan=200_000)
        assert not in_group_a(5, age=30, salary=75_000, loan=450_000)
        assert in_group_a(5, age=30, salary=120_000, loan=300_000)


class TestFunction6:
    def test_total_income(self):
        # salary below 75K generates commission; total income decides.
        assert in_group_a(6, age=30, salary=60_000, commission=20_000)
        assert not in_group_a(6, age=30, salary=60_000, commission=60_000)


class TestFunction7:
    def test_positive_disposable(self):
        # 0.67*150000 - 0 - 20000 > 0
        assert in_group_a(7, salary=150_000, commission=0, loan=0)

    def test_negative_disposable(self):
        # 0.67*30000 - 0.2*400000 - 20000 < 0
        assert not in_group_a(7, salary=30_000, commission=0, loan=400_000)

    def test_loan_tips_the_balance(self):
        assert in_group_a(7, salary=90_000, loan=0)
        assert not in_group_a(7, salary=90_000, loan=250_000)


class TestFunctions8To10:
    def test_function8_elevel_deduction(self):
        assert in_group_a(8, salary=60_000, elevel=0)
        assert not in_group_a(8, salary=20_000, commission=0, elevel=4)

    def test_function9_loan_term(self):
        assert in_group_a(9, salary=90_000, elevel=0, loan=0)
        assert not in_group_a(9, salary=30_000, commission=0, elevel=4,
                              loan=400_000)

    def test_function10_equity_matters(self):
        rich_home = dict(
            salary=20_000, commission=0, elevel=2,
            hvalue=900_000.0, hyears=30.0,
        )
        poor_home = dict(rich_home, hvalue=100_000.0, hyears=5.0)
        assert in_group_a(10, **rich_home)
        assert not in_group_a(10, **poor_home)


class TestRegistry:
    def test_all_ten_present(self):
        assert sorted(QUEST_FUNCTIONS) == list(range(1, 11))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError, match="1-10"):
            quest_function(11)

    def test_vectorized_shape(self):
        rng = np.random.default_rng(0)
        batch = {k: v.repeat(100) for k, v in cols().items()}
        batch["age"] = rng.uniform(20, 80, 100)
        for fn in range(1, 11):
            result = quest_function(fn)(batch)
            assert result.shape == (100,)
            assert result.dtype == bool
