"""Tests for the parallel setup phase (the paper's future work)."""

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.smp.machine import machine_a, machine_b


class TestParallelSetup:
    def test_same_tree(self, small_f2):
        reference = build_classifier(small_f2, algorithm="mwk", n_procs=2)
        parallel = build_classifier(
            small_f2, algorithm="mwk", n_procs=2, parallel_setup=True
        )
        assert parallel.tree.signature() == reference.tree.signature()

    def test_setup_time_shrinks(self, medium_f2):
        serial = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_b(4), n_procs=4
        )
        parallel = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_b(4), n_procs=4,
            parallel_setup=True,
        )
        serial_phase = serial.timings["setup"] + serial.timings["sort"]
        parallel_phase = parallel.timings["setup"] + parallel.timings["sort"]
        assert parallel_phase < serial_phase / 1.5

    def test_build_time_unchanged(self, medium_f2):
        serial = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_b(4), n_procs=4
        )
        parallel = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_b(4), n_procs=4,
            parallel_setup=True,
        )
        assert parallel.timings["build"] == pytest.approx(
            serial.timings["build"]
        )

    def test_total_speedup_improves(self, medium_f2):
        """The paper's §4.2 prediction: parallel setup lifts total-time
        speedup on simple datasets."""
        def total_speedup(parallel_setup):
            t1 = build_classifier(
                medium_f2, algorithm="mwk", machine=machine_b(1), n_procs=1,
                parallel_setup=parallel_setup,
            ).total_time
            t4 = build_classifier(
                medium_f2, algorithm="mwk", machine=machine_b(4), n_procs=4,
                parallel_setup=parallel_setup,
            ).total_time
            return t1 / t4

        assert total_speedup(True) > total_speedup(False)

    def test_disk_contention_still_charged(self, medium_f2):
        """On machine A the parallel setup's writes still queue on the
        shared disk, so the phase cannot speed up past the disk."""
        serial = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_a(4), n_procs=4
        )
        parallel = build_classifier(
            medium_f2, algorithm="mwk", machine=machine_a(4), n_procs=4,
            parallel_setup=True,
        )
        s = serial.timings["setup"] + serial.timings["sort"]
        p = parallel.timings["setup"] + parallel.timings["sort"]
        assert p < s  # faster...
        assert p > s / 4  # ...but not by the full processor count

    def test_phase_breakdown_remains_positive(self, small_f2):
        result = build_classifier(
            small_f2, algorithm="mwk", n_procs=4, parallel_setup=True
        )
        assert result.timings["setup"] > 0
        assert result.timings["sort"] > 0
