"""End-to-end native-vs-numpy differential: bit-identical trees.

The native kernels replace the numpy training loops underneath every
scheme, so the strongest acceptance check is at the tree level: for
each of the 24 scheme x procs x probe configurations and several
dataset seeds, a build with the C kernels must produce *exactly* the
tree a numpy serial build produces — same structure, same split
attributes/thresholds/subsets, same class counts (all captured by
``DecisionTree.signature``).

Comparing every config against the per-dataset numpy serial reference
proves both cross-backend bit-identity and scheme-invariance under the
native kernels in one assertion.
"""

import pytest

from repro._native import cc
from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.data.generator import DatasetSpec, generate_dataset
from repro.smp.machine import machine_b
from repro.sprint import native

pytestmark = pytest.mark.skipif(
    not native.native_available(),
    reason="no C compiler / native kernels unavailable",
)

SCHEMES = ("serial", "basic", "fwk", "mwk", "subtree", "recordpar")

#: (function, seed) per dataset — F7 grows the large, deep trees.
DATASETS = ((2, 3), (7, 11), (2, 29))


@pytest.fixture(scope="module")
def datasets():
    return [
        generate_dataset(
            DatasetSpec(function=fn, n_attributes=9, n_records=300, seed=seed)
        )
        for fn, seed in DATASETS
    ]


@pytest.fixture(scope="module")
def numpy_references(datasets):
    refs = []
    with cc.native_override("off"):
        for ds in datasets:
            refs.append(
                build_classifier(ds, algorithm="serial").tree.signature()
            )
    return refs


@pytest.mark.parametrize("probe", ["bit", "hash"])
@pytest.mark.parametrize("n_procs", [1, 3])
@pytest.mark.parametrize("scheme", SCHEMES)
def test_native_tree_bit_identical(
    datasets, numpy_references, scheme, n_procs, probe
):
    params = BuildParams(probe=probe)
    for ds, ref in zip(datasets, numpy_references):
        with cc.native_override("on"):
            result = build_classifier(
                ds,
                algorithm=scheme,
                machine=machine_b(n_procs),
                n_procs=n_procs,
                params=params,
            )
        assert result.tree.signature() == ref, (
            f"native {scheme}/procs={n_procs}/probe={probe} diverged "
            f"from the numpy serial reference on {ds.name}"
        )
