"""Scheme-specific tests for SUBTREE's group machinery."""

import pytest

from repro.core.builder import build_classifier
from repro.core.context import BuildContext
from repro.core.params import BuildParams
from repro.core.subtree import SubtreeScheme
from repro.smp.machine import machine_b
from repro.smp.runtime import VirtualSMP
from repro.storage.backends import MemoryBackend


def make_scheme(dataset, n_procs, params=None):
    rt = VirtualSMP(machine_b(n_procs), n_procs)
    ctx = BuildContext(dataset, rt, MemoryBackend(), params or BuildParams())
    from repro.core.context import write_root_segments

    write_root_segments(ctx)
    return SubtreeScheme(ctx), ctx


class TestGroups:
    def test_initial_group_holds_all_processors(self, small_f2):
        scheme, _ = make_scheme(small_f2, 4)
        assert scheme.initial_group.members == [0, 1, 2, 3]
        assert scheme.live_groups == 1

    def test_more_procs_than_leaves(self, car_insurance):
        """Six records, tiny tree: groups stay coherent and terminate."""
        result = build_classifier(
            car_insurance, algorithm="subtree", n_procs=8
        )
        assert result.tree.root.split is not None

    def test_single_processor_group(self, small_f7):
        result = build_classifier(small_f7, algorithm="subtree", n_procs=1)
        serial = build_classifier(small_f7, algorithm="serial")
        assert result.tree.signature() == serial.tree.signature()

    def test_free_queue_drains(self, small_f7):
        """After the build every processor has left the FREE queue."""
        scheme, ctx = make_scheme(small_f7, 4)
        scheme.build()
        assert scheme.done
        assert scheme.free_assignment == {}
        assert scheme.live_groups == 0

    def test_group_ids_unique(self, small_f7):
        scheme, _ = make_scheme(small_f7, 4)
        scheme.build()
        # At least the initial group plus some splits happened.
        assert scheme._next_group_id >= 2


class TestPartition:
    def test_one_leaf_keeps_group_together(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4)
        root_task = scheme.initial_group.tasks
        groups = scheme._partition([0, 1, 2, 3], root_task)
        assert len(groups) == 1
        assert groups[0].members == [0, 1, 2, 3]

    def test_single_processor_takes_all_leaves(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4)
        tasks = scheme.initial_group.tasks * 1
        fake_tasks = tasks + tasks  # two tasks
        groups = scheme._partition([2], fake_tasks)
        assert len(groups) == 1
        assert groups[0].members == [2]
        assert len(groups[0].tasks) == 2

    def test_binary_split(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4)
        t = scheme.initial_group.tasks[0]
        groups = scheme._partition([0, 1, 2, 3], [t, t, t, t])
        assert len(groups) == 2
        assert groups[0].members == [0, 1]
        assert groups[1].members == [2, 3]
        assert len(groups[0].tasks) == 2 and len(groups[1].tasks) == 2

    def test_odd_split_sizes(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4)
        t = scheme.initial_group.tasks[0]
        groups = scheme._partition([0, 1, 2], [t, t, t])
        assert [len(g.members) for g in groups] == [2, 1]
        assert [len(g.tasks) for g in groups] == [2, 1]


class TestLayout:
    def test_groups_have_private_layouts(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 2)
        t = scheme.initial_group.tasks[0]
        g1, g2 = scheme._partition([0, 1], [t, t])
        assert g1.layout.group != g2.layout.group
