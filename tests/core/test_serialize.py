"""Unit tests for tree persistence."""

import json

import numpy as np
import pytest

from repro.classify.predict import predict
from repro.core.builder import build_classifier
from repro.core.serialize import (
    load_tree,
    save_tree,
    schema_from_dict,
    schema_to_dict,
    tree_from_dict,
    tree_to_dict,
)


class TestSchemaRoundTrip:
    def test_round_trip(self, tiny_schema):
        restored = schema_from_dict(schema_to_dict(tiny_schema))
        assert restored.attribute_names == tiny_schema.attribute_names
        assert restored.class_names == tiny_schema.class_names
        assert restored.attribute("car").cardinality == 3

    def test_json_serializable(self, tiny_schema):
        json.dumps(schema_to_dict(tiny_schema))


class TestTreeRoundTrip:
    def test_signature_preserved(self, small_f2):
        tree = build_classifier(small_f2).tree
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.signature() == tree.signature()

    def test_predictions_preserved(self, small_f7):
        tree = build_classifier(small_f7).tree
        restored = tree_from_dict(tree_to_dict(tree))
        np.testing.assert_array_equal(
            predict(tree, small_f7), predict(restored, small_f7)
        )

    def test_file_round_trip(self, small_f2, tmp_path):
        tree = build_classifier(small_f2).tree
        path = str(tmp_path / "tree.json")
        save_tree(tree, path)
        restored = load_tree(path)
        assert restored.signature() == tree.signature()

    def test_file_is_json(self, car_insurance, tmp_path):
        tree = build_classifier(car_insurance).tree
        path = str(tmp_path / "tree.json")
        save_tree(tree, path)
        with open(path) as f:
            data = json.load(f)
        assert data["format"] == "repro-decision-tree"
        assert data["version"] == 2
        assert "schema" in data and "nodes" in data

    def test_categorical_subset_survives(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        restored = tree_from_dict(tree_to_dict(tree))
        # The car_type subsplit is categorical: subsets must round-trip
        # as frozensets.
        node = restored.root.right
        assert node.split.subset == frozenset({1})

    def test_leaf_only_tree(self, tiny_schema):
        from repro.data.dataset import Dataset

        pure = Dataset(
            tiny_schema,
            {"age": np.array([1.0]), "car": np.array([0], dtype=np.int64)},
            np.array([0], dtype=np.int32),
        )
        tree = build_classifier(pure).tree
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.root.is_leaf


class TestFormatMigration:
    """v1 (nested, legacy) and v2 (columnar) interoperate."""

    def test_v1_write_read_round_trip(self, small_f2):
        tree = build_classifier(small_f2).tree
        data = tree_to_dict(tree, version=1)
        assert data["version"] == 1 and "root" in data
        restored = tree_from_dict(data)
        assert restored.signature() == tree.signature()

    def test_v1_to_v2_migration(self, small_f2):
        """Load a legacy file, rewrite as v2, predictions unchanged."""
        tree = build_classifier(small_f2).tree
        legacy = tree_from_dict(tree_to_dict(tree, version=1))
        migrated = tree_from_dict(tree_to_dict(legacy, version=2))
        assert migrated.signature() == tree.signature()
        np.testing.assert_array_equal(
            predict(migrated, small_f2), predict(tree, small_f2)
        )

    def test_v1_and_v2_files_both_load(self, car_insurance, tmp_path):
        tree = build_classifier(car_insurance).tree
        p1 = str(tmp_path / "v1.json")
        p2 = str(tmp_path / "v2.json")
        save_tree(tree, p1, version=1)
        save_tree(tree, p2, version=2)
        assert load_tree(p1).signature() == load_tree(p2).signature()

    def test_compiled_tree_from_dict(self, car_insurance):
        from repro.core.serialize import compiled_tree_from_dict

        tree = build_classifier(car_insurance).tree
        for version in (1, 2):
            compiled = compiled_tree_from_dict(
                tree_to_dict(tree, version=version)
            )
            np.testing.assert_array_equal(
                compiled.predict(car_insurance.columns),
                predict(tree, car_insurance),
            )

    def test_unwritable_version_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        with pytest.raises(ValueError, match="version"):
            tree_to_dict(tree, version=3)

    def test_v2_categorical_subset_survives(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        restored = tree_from_dict(tree_to_dict(tree, version=2))
        node = restored.root.right
        assert node.split.subset == frozenset({1})


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            tree_from_dict({"format": "pickle", "version": 1})

    def test_wrong_version_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        data = tree_to_dict(tree)
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            tree_from_dict(data)

    def test_v2_negative_child_index_rejected(self, car_insurance):
        """A -1 child must be a parse error, not Python negative indexing
        silently wiring the last node in as a child."""
        tree = build_classifier(car_insurance).tree
        data = tree_to_dict(tree)
        data["nodes"]["left"][0] = -1
        with pytest.raises(ValueError, match="left"):
            tree_from_dict(data)

    def test_v2_out_of_range_child_index_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        data = tree_to_dict(tree)
        data["nodes"]["right"][0] = data["nodes"]["count"] + 5
        with pytest.raises(ValueError, match="right"):
            tree_from_dict(data)

    def test_v2_self_child_index_rejected(self, car_insurance):
        tree = build_classifier(car_insurance).tree
        data = tree_to_dict(tree)
        data["nodes"]["left"][0] = 0
        with pytest.raises(ValueError, match="left"):
            tree_from_dict(data)
