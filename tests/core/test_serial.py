"""Unit tests for the serial SPRINT builder."""

import numpy as np
import pytest

from repro.classify.predict import predict
from repro.core.builder import build_classifier
from repro.core.context import BuildContext
from repro.core.params import BuildParams
from repro.core.serial import build_serial
from repro.smp.machine import machine_b
from repro.smp.runtime import VirtualSMP
from repro.storage.backends import MemoryBackend


class TestCarInsurance:
    """The paper's running example (Figures 1 and 2)."""

    def test_root_split_is_age(self, car_insurance):
        tree = build_classifier(car_insurance, algorithm="serial").tree
        assert tree.root.split.attribute == "age"
        assert tree.root.split.threshold == pytest.approx(27.5)

    def test_perfect_training_accuracy(self, car_insurance):
        tree = build_classifier(car_insurance, algorithm="serial").tree
        predicted = predict(tree, car_insurance)
        np.testing.assert_array_equal(predicted, car_insurance.labels)


class TestStoppingRules:
    def test_grows_to_purity_by_default(self, small_f2):
        tree = build_classifier(small_f2, algorithm="serial").tree
        for node in tree.iter_nodes():
            if node.is_leaf and node.n_records >= 2:
                # Leaves are pure or unsplittable; pure is the common case
                # on noise-free Quest data.
                pass
        predicted = predict(tree, small_f2)
        assert np.mean(predicted == small_f2.labels) > 0.99

    def test_max_depth_respected(self, small_f2):
        tree = build_classifier(
            small_f2, algorithm="serial", params=BuildParams(max_depth=3)
        ).tree
        assert tree.n_levels <= 4  # root at depth 0 + 3 levels

    def test_min_split_records(self, small_f2):
        tree = build_classifier(
            small_f2,
            algorithm="serial",
            params=BuildParams(min_split_records=50),
        ).tree
        for node in tree.iter_nodes():
            if not node.is_leaf:
                assert node.n_records >= 50

    def test_single_record_dataset(self, tiny_schema):
        from repro.data.dataset import Dataset

        data = Dataset(
            tiny_schema,
            {"age": np.array([1.0]), "car": np.array([0], dtype=np.int64)},
            np.array([0], dtype=np.int32),
        )
        tree = build_classifier(data, algorithm="serial").tree
        assert tree.root.is_leaf

    def test_unsplittable_constant_attributes(self, tiny_schema):
        """Identical attribute values for mixed classes: root stays leaf."""
        from repro.data.dataset import Dataset

        data = Dataset(
            tiny_schema,
            {
                "age": np.full(4, 5.0),
                "car": np.zeros(4, dtype=np.int64),
            },
            np.array([0, 1, 0, 1], dtype=np.int32),
        )
        tree = build_classifier(data, algorithm="serial").tree
        assert tree.root.is_leaf
        assert tree.root.majority_class == 0


class TestBookkeeping:
    def test_requires_single_processor(self, car_insurance):
        rt = VirtualSMP(machine_b(2), 2)
        ctx = BuildContext(car_insurance, rt, MemoryBackend(), BuildParams())
        with pytest.raises(ValueError, match="1-processor"):
            build_serial(ctx)

    def test_all_segments_cleaned_up(self, small_f2):
        backend = MemoryBackend()
        build_classifier(small_f2, algorithm="serial", backend=backend)
        assert backend.keys() == []  # every split deletes its parent

    def test_node_class_counts_consistent(self, small_f2):
        tree = build_classifier(small_f2, algorithm="serial").tree
        for node in tree.iter_nodes():
            if not node.is_leaf:
                np.testing.assert_array_equal(
                    node.class_counts,
                    node.left.class_counts + node.right.class_counts,
                )

    def test_leaf_record_counts_sum_to_dataset(self, small_f2):
        tree = build_classifier(small_f2, algorithm="serial").tree
        total = sum(n.n_records for n in tree.iter_nodes() if n.is_leaf)
        assert total == small_f2.n_records
