"""Unit tests for build parameters."""

import pytest

from repro.core.params import BuildParams


class TestBuildParams:
    def test_defaults_match_paper(self):
        p = BuildParams()
        assert p.window == 4  # "a window size of 4 works well" (§4.2)
        assert p.probe == "bit"  # BASIC's choice (§3.2.1)

    def test_min_split_records_validated(self):
        with pytest.raises(ValueError, match="min_split_records"):
            BuildParams(min_split_records=1)

    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            BuildParams(window=0)

    def test_probe_validated(self):
        with pytest.raises(ValueError, match="probe"):
            BuildParams(probe="bloom")

    def test_max_exhaustive_validated(self):
        with pytest.raises(ValueError, match="max_exhaustive"):
            BuildParams(max_exhaustive_subset=0)

    def test_depth_limit_disabled(self):
        assert BuildParams(max_depth=0).depth_limit > 1_000_000
        assert BuildParams(max_depth=-1).depth_limit > 1_000_000

    def test_depth_limit_enabled(self):
        assert BuildParams(max_depth=5).depth_limit == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BuildParams().window = 8
