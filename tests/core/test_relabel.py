"""Tests for the Figure 5 relabeling scheme vs the simple scheme."""

import pytest

from repro.core.builder import build_classifier
from repro.core.fwk import slot_blocks
from repro.core.params import BuildParams
from repro.smp.machine import machine_b


class TestSlotAssignment:
    def _frontier_slots(self, dataset, relabel):
        """Build one level by hand and report the next frontier's slots."""
        from repro.core.context import BuildContext, write_root_segments
        from repro.smp.runtime import VirtualSMP
        from repro.storage.backends import MemoryBackend

        rt = VirtualSMP(machine_b(1), 1)
        ctx = BuildContext(
            dataset, rt, MemoryBackend(),
            BuildParams(relabel=relabel, max_depth=2),
        )
        write_root_segments(ctx)
        task = ctx.make_root_task()
        slots = {}

        def body(pid):
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)
            for a in range(ctx.n_attrs):
                ctx.split_attribute(task, a)
            frontier = ctx.next_frontier([task])
            slots["value"] = [t.slot for t in frontier]

        rt.run(body)
        return slots["value"]

    def test_relabel_slots_consecutive(self, small_f7):
        slots = self._frontier_slots(small_f7, relabel=True)
        assert slots == list(range(len(slots)))

    def test_simple_scheme_may_leave_holes(self, small_f2):
        """Raw positions are used; they are a subsequence of 0..2n-1."""
        slots = self._frontier_slots(small_f2, relabel=False)
        assert slots == sorted(slots)
        assert all(0 <= s < 2 for s in slots)  # root has two children


class TestSlotBlocks:
    class _T:
        def __init__(self, slot):
            self.slot = slot

    def test_consecutive_slots(self):
        tasks = [self._T(s) for s in range(6)]
        assert slot_blocks(tasks, 3) == [[0, 1, 2], [3, 4, 5]]

    def test_gappy_slots_make_ragged_blocks(self):
        # Slots 0, 2, 5, 6: K=2 blocks are {0,2->block0? no: 0//2=0,
        # 2//2=1, 5//2=2, 6//2=3} -> four singleton blocks.
        tasks = [self._T(s) for s in (0, 2, 5, 6)]
        blocks = slot_blocks(tasks, 2)
        assert blocks == [[0], [1], [2], [3]]

    def test_empty(self):
        assert slot_blocks([], 4) == []


class TestTreesUnchanged:
    @pytest.mark.parametrize("algorithm", ["fwk", "mwk"])
    def test_simple_scheme_builds_same_tree(self, small_f7, algorithm):
        reference = build_classifier(small_f7, algorithm="serial").tree
        result = build_classifier(
            small_f7,
            algorithm=algorithm,
            machine=machine_b(4),
            n_procs=4,
            params=BuildParams(relabel=False),
        )
        assert result.tree.signature() == reference.signature()


class TestPerformanceClaim:
    def test_relabeling_never_slower_fwk(self, small_f7):
        """Figure 5's point: holes in the schedule cost FWK overlap."""
        relabeled = build_classifier(
            small_f7, algorithm="fwk", machine=machine_b(4), n_procs=4,
            params=BuildParams(relabel=True),
        )
        simple = build_classifier(
            small_f7, algorithm="fwk", machine=machine_b(4), n_procs=4,
            params=BuildParams(relabel=False),
        )
        assert relabeled.build_time <= simple.build_time * 1.02
        # The simple scheme runs more, smaller blocks -> more barriers.
        assert (
            sum(relabeled.stats.barrier_wait)
            <= sum(simple.stats.barrier_wait) * 1.05
        )
