"""Tests for multi-step splitting under a probe memory budget (§2.3)."""

import pytest

from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.smp.machine import machine_a, machine_b


class TestMultiStepSplit:
    def test_same_tree(self, small_f7):
        reference = build_classifier(small_f7, algorithm="serial").tree
        limited = build_classifier(
            small_f7,
            algorithm="serial",
            params=BuildParams(probe_memory_entries=50),
        ).tree
        assert limited.signature() == reference.signature()

    def test_costs_more_time(self, small_f7):
        unlimited = build_classifier(
            small_f7, algorithm="serial", machine=machine_a(1)
        ).build_time
        limited = build_classifier(
            small_f7,
            algorithm="serial",
            machine=machine_a(1),
            params=BuildParams(probe_memory_entries=50),
        ).build_time
        assert limited > unlimited * 1.2

    def test_large_budget_is_free(self, small_f7):
        unlimited = build_classifier(
            small_f7, algorithm="serial", machine=machine_a(1)
        ).build_time
        roomy = build_classifier(
            small_f7,
            algorithm="serial",
            machine=machine_a(1),
            params=BuildParams(probe_memory_entries=10**9),
        ).build_time
        assert roomy == pytest.approx(unlimited)

    def test_parallel_schemes_respect_budget(self, small_f7):
        reference = build_classifier(small_f7, algorithm="serial").tree
        for algorithm in ("basic", "mwk", "subtree"):
            result = build_classifier(
                small_f7,
                algorithm=algorithm,
                machine=machine_b(3),
                n_procs=3,
                params=BuildParams(probe_memory_entries=40),
            )
            assert result.tree.signature() == reference.signature()

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="probe_memory_entries"):
            BuildParams(probe_memory_entries=0)

    def test_steps_scale_with_smaller_child(self, small_f7):
        """The step count follows the smaller child (SPRINT keeps only
        the smaller child's tids)."""
        from repro.core.context import BuildContext, write_root_segments
        from repro.smp.runtime import VirtualSMP
        from repro.storage.backends import MemoryBackend

        rt = VirtualSMP(machine_b(1), 1)
        ctx = BuildContext(
            small_f7, rt, MemoryBackend(),
            BuildParams(probe_memory_entries=10),
        )
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body(pid):
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)

        rt.run(body)
        node = task.node
        smaller = min(node.left.n_records, node.right.n_records)
        assert task.split_steps == -(-smaller // 10)
