"""Unit tests for the E/W/S kernels and build context."""

import numpy as np
import pytest

from repro.core.context import BuildContext, write_root_segments
from repro.core.params import BuildParams
from repro.smp.machine import machine_b
from repro.smp.runtime import VirtualSMP
from repro.storage.backends import MemoryBackend


def make_ctx(dataset, params=None, n_procs=1):
    rt = VirtualSMP(machine_b(n_procs), n_procs)
    ctx = BuildContext(
        dataset, rt, MemoryBackend(), params or BuildParams()
    )
    return ctx, rt


def run_serial_level(ctx, rt, body):
    """Run `body()` on a single virtual processor."""
    rt.run(lambda pid: body())


class TestSetupPhase:
    def test_root_segments_written(self, car_insurance):
        ctx, _ = make_ctx(car_insurance)
        timings = write_root_segments(ctx)
        assert timings["setup"] > 0 and timings["sort"] > 0
        for attr_index in range(ctx.n_attrs):
            key = ctx.segment_key(attr_index, 0)
            assert ctx.backend.exists(key)

    def test_continuous_root_segment_sorted(self, car_insurance):
        ctx, _ = make_ctx(car_insurance)
        write_root_segments(ctx)
        age = ctx.backend.read(ctx.segment_key(0, 0))
        assert np.all(np.diff(age["value"]) >= 0)


class TestEvaluate:
    def test_car_insurance_winner_is_age(self, car_insurance):
        """The paper's Figure 1/2 example splits the root on Age < 27.5."""
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            choice = ctx.choose_winner(task)
            assert choice is not None
            attr_index, cand = choice
            assert ctx.schema.attributes[attr_index].name == "age"

        run_serial_level(ctx, rt, body)

    def test_candidates_filled(self, car_insurance):
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)

        run_serial_level(ctx, rt, body)
        assert all(c is not None for c in task.candidates)


class TestWinnerPhase:
    def test_children_partition_counts(self, car_insurance):
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)

        run_serial_level(ctx, rt, body)
        node = task.node
        assert not node.is_leaf
        total = node.left.class_counts + node.right.class_counts
        np.testing.assert_array_equal(total, node.class_counts)
        assert task.w_done

    def test_pure_node_becomes_leaf(self, tiny_schema):
        from repro.data.dataset import Dataset

        pure = Dataset(
            tiny_schema,
            {
                "age": np.array([1.0, 2.0]),
                "car": np.array([0, 1], dtype=np.int64),
            },
            np.array([0, 0], dtype=np.int32),
        )
        ctx, _ = make_ctx(pure)
        assert ctx.make_root_task() is None
        tree = ctx.finish()
        assert tree.root.is_leaf

    def test_depth_limit_prefinalizes_children(self, car_insurance):
        ctx, rt = make_ctx(car_insurance, BuildParams(max_depth=1))
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)

        run_serial_level(ctx, rt, body)
        assert task.valid_children == []  # both children at depth limit
        assert task.node.left.is_leaf and task.node.right.is_leaf


class TestSplitPhase:
    def test_segments_move_to_children(self, car_insurance):
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)
            for a in range(ctx.n_attrs):
                ctx.split_attribute(task, a)

        run_serial_level(ctx, rt, body)
        node = task.node
        for a in range(ctx.n_attrs):
            assert not ctx.backend.exists(ctx.segment_key(a, node.node_id))
            for child in task.valid_children:
                seg = ctx.backend.read(ctx.segment_key(a, child.node_id))
                assert len(seg) == child.n_records

    def test_split_preserves_sort_order(self, small_f2):
        ctx, rt = make_ctx(small_f2)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)
            for a in range(ctx.n_attrs):
                ctx.split_attribute(task, a)

        run_serial_level(ctx, rt, body)
        for a, attr in enumerate(ctx.schema.attributes):
            if not attr.is_continuous:
                continue
            for child in task.valid_children:
                seg = ctx.backend.read(ctx.segment_key(a, child.node_id))
                assert np.all(np.diff(seg["value"]) >= 0)


class TestFrontier:
    def test_next_frontier_relabels(self, car_insurance):
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)

        run_serial_level(ctx, rt, body)
        frontier = ctx.next_frontier([task])
        assert [t.slot for t in frontier] == list(range(len(frontier)))
        assert all(t.level == 1 for t in frontier)

    def test_empty_frontier(self, car_insurance):
        ctx, _ = make_ctx(car_insurance)
        assert ctx.next_frontier([]) == []

    def test_node_ids_heap_numbered(self, car_insurance):
        ctx, rt = make_ctx(car_insurance)
        write_root_segments(ctx)
        task = ctx.make_root_task()

        def body():
            for a in range(ctx.n_attrs):
                ctx.evaluate_attribute(task, a)
            ctx.winner_phase(task)

        run_serial_level(ctx, rt, body)
        assert task.node.left.node_id == 1
        assert task.node.right.node_id == 2
