"""Tests for the weighted SUBTREE partition extension."""

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.core.context import BuildContext, LeafTask
from repro.core.params import BuildParams
from repro.core.subtree import SubtreeScheme
from repro.core.tree import Node
from repro.smp.machine import machine_b
from repro.smp.runtime import VirtualSMP
from repro.storage.backends import MemoryBackend


def make_scheme(dataset, n_procs, weighted):
    params = BuildParams(subtree_weighted=weighted)
    rt = VirtualSMP(machine_b(n_procs), n_procs)
    ctx = BuildContext(dataset, rt, MemoryBackend(), params)
    from repro.core.context import write_root_segments

    write_root_segments(ctx)
    return SubtreeScheme(ctx), ctx


def fake_task(ctx, node_id, n_records):
    node = Node(node_id, 1, np.array([n_records, 0]))
    return LeafTask(node, slot=0, level=1, n_attrs=ctx.n_attrs)


class TestSplitPoint:
    def test_unweighted_halves_by_count(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4, weighted=False)
        tasks = [fake_task(ctx, i, 10) for i in range(5)]
        assert scheme._split_point(tasks) == 3  # ceil(5/2)

    def test_weighted_balances_records(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4, weighted=True)
        # One huge leaf followed by four small ones: the weighted cut
        # isolates the huge leaf; the unweighted cut would put three
        # leaves (including the huge one) in the first half.
        sizes = [1000, 10, 10, 10, 10]
        tasks = [fake_task(ctx, i, s) for i, s in enumerate(sizes)]
        assert scheme._split_point(tasks) == 1

    def test_weighted_balanced_input_splits_evenly(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4, weighted=True)
        tasks = [fake_task(ctx, i, 10) for i in range(6)]
        assert scheme._split_point(tasks) == 3

    def test_both_halves_nonempty(self, small_f2):
        scheme, ctx = make_scheme(small_f2, 4, weighted=True)
        tasks = [fake_task(ctx, 0, 10_000), fake_task(ctx, 1, 1)]
        cut = scheme._split_point(tasks)
        assert 1 <= cut <= 1


class TestWeightedBuilds:
    def test_same_tree(self, small_f7):
        reference = build_classifier(small_f7, algorithm="serial").tree
        weighted = build_classifier(
            small_f7,
            algorithm="subtree",
            n_procs=4,
            params=BuildParams(subtree_weighted=True),
        )
        assert weighted.tree.signature() == reference.signature()

    def test_never_much_worse_than_unweighted(self, small_f7):
        plain = build_classifier(
            small_f7, algorithm="subtree", machine=machine_b(4), n_procs=4
        ).build_time
        weighted = build_classifier(
            small_f7,
            algorithm="subtree",
            machine=machine_b(4),
            n_procs=4,
            params=BuildParams(subtree_weighted=True),
        ).build_time
        assert weighted <= plain * 1.1
