"""End-to-end thread-count differential: bit-identical trees and votes.

The in-kernel pool must be invisible in every result: a build with
``REPRO_NATIVE_THREADS=4`` has to produce *exactly* the tree a numpy
serial build produces, for every scheme, and a forest has to vote the
same classes at any lane count.  The dataset is sized so root-level
scans genuinely span multiple pool blocks (well past the 16384-row
blocking grain) — at 300 records the threaded kernels would dispatch
but never fan out.

Thread counts are driven through the ``REPRO_NATIVE_THREADS``
environment variable (the spelling operators use); the CLI-override
precedence is covered in ``tests/sprint/test_native_threads.py``.
"""

import numpy as np
import pytest

from repro._native import cc, pool
from repro.classify.forest import compile_forest
from repro.classify.treegen import random_columns, random_schema, random_tree
from repro.core.builder import build_classifier
from repro.data.generator import DatasetSpec, generate_dataset
from repro.smp.machine import machine_b
from repro.sprint import native

pytestmark = pytest.mark.skipif(
    not native.native_available(),
    reason="no C compiler / native kernels unavailable",
)

SCHEMES = ("serial", "basic", "fwk", "mwk", "subtree", "recordpar")
THREADS = (1, 2, 4)


@pytest.fixture(scope="module")
def dataset():
    # 40k records: the root scan covers multiple pool blocks at >=2
    # lanes, so the parallel decompositions (not just their dispatch)
    # are what must reproduce the reference.
    return generate_dataset(
        DatasetSpec(function=2, n_attributes=9, n_records=40_000, seed=3)
    )


@pytest.fixture(scope="module")
def numpy_reference(dataset):
    with cc.native_override("off"):
        return build_classifier(dataset, algorithm="serial").tree.signature()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_trees_bit_identical_across_thread_counts(
    dataset, numpy_reference, scheme, monkeypatch
):
    for n_threads in THREADS:
        monkeypatch.setenv("REPRO_NATIVE_THREADS", str(n_threads))
        with pool.thread_override(None), cc.native_override("on"):
            result = build_classifier(
                dataset,
                algorithm=scheme,
                machine=machine_b(2),
                n_procs=2,
            )
        assert result.tree.signature() == numpy_reference, (
            f"native {scheme} with REPRO_NATIVE_THREADS={n_threads} "
            f"diverged from the numpy serial reference"
        )


def test_forest_votes_bit_identical_across_thread_counts(monkeypatch):
    rng = np.random.default_rng(7)
    schema = random_schema(rng)
    forest = compile_forest(
        [
            random_tree(schema, max_depth=8, seed=100 + i, leaf_prob=0.25)
            for i in range(32)
        ]
    )
    columns = random_columns(schema, 70_000, seed=5, wild=True)
    with cc.native_override("off"):
        ref = forest.predict(columns)
    for n_threads in THREADS:
        monkeypatch.setenv("REPRO_NATIVE_THREADS", str(n_threads))
        with pool.thread_override(None), cc.native_override("on"):
            got = forest.predict(columns)
        np.testing.assert_array_equal(ref, got)
