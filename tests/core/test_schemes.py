"""Cross-scheme integration: every scheme builds the identical tree.

This is the central correctness property of the paper's design: BASIC,
FWK, MWK and SUBTREE are *schedules* of the same E/W/S work, so the tree
must be bit-identical to serial SPRINT's for every processor count,
window size and probe structure.
"""

import pytest

from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.smp.machine import machine_a, machine_b

ALGOS = ("basic", "fwk", "mwk", "subtree")


@pytest.fixture(scope="module")
def reference_f2(small_f2):
    return build_classifier(small_f2, algorithm="serial").tree.signature()


@pytest.fixture(scope="module")
def reference_f7(small_f7):
    return build_classifier(small_f7, algorithm="serial").tree.signature()


# conftest fixtures are function-scoped by default; redefine at module scope.
@pytest.fixture(scope="module")
def small_f2():
    from repro.data.generator import DatasetSpec, generate_dataset

    return generate_dataset(
        DatasetSpec(function=2, n_attributes=9, n_records=600, seed=3)
    )


@pytest.fixture(scope="module")
def small_f7():
    from repro.data.generator import DatasetSpec, generate_dataset

    return generate_dataset(
        DatasetSpec(function=7, n_attributes=9, n_records=600, seed=3)
    )


class TestTreeEquality:
    @pytest.mark.parametrize("algorithm", ALGOS)
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 4])
    def test_f2_equal_trees(self, small_f2, reference_f2, algorithm, n_procs):
        result = build_classifier(
            small_f2, algorithm=algorithm,
            machine=machine_b(n_procs), n_procs=n_procs,
        )
        assert result.tree.signature() == reference_f2

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_f7_equal_trees(self, small_f7, reference_f7, algorithm):
        result = build_classifier(
            small_f7, algorithm=algorithm, machine=machine_b(4), n_procs=4
        )
        assert result.tree.signature() == reference_f7

    @pytest.mark.parametrize("window", [1, 2, 3, 8])
    @pytest.mark.parametrize("algorithm", ["fwk", "mwk"])
    def test_window_size_does_not_change_tree(
        self, small_f2, reference_f2, algorithm, window
    ):
        result = build_classifier(
            small_f2,
            algorithm=algorithm,
            machine=machine_b(3),
            n_procs=3,
            params=BuildParams(window=window),
        )
        assert result.tree.signature() == reference_f2

    def test_hash_probe_same_tree(self, small_f2, reference_f2):
        result = build_classifier(
            small_f2,
            algorithm="mwk",
            machine=machine_b(2),
            n_procs=2,
            params=BuildParams(probe="hash"),
        )
        assert result.tree.signature() == reference_f2

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_machine_model_does_not_change_tree(
        self, small_f2, reference_f2, algorithm
    ):
        """The cost model only changes timings, never decisions."""
        result = build_classifier(
            small_f2, algorithm=algorithm, machine=machine_a(4), n_procs=4
        )
        assert result.tree.signature() == reference_f2


class TestDeterminism:
    def test_repeat_runs_identical(self, small_f7):
        a = build_classifier(small_f7, algorithm="mwk", n_procs=4)
        b = build_classifier(small_f7, algorithm="mwk", n_procs=4)
        assert a.tree.signature() == b.tree.signature()
        assert a.build_time == b.build_time  # virtual time is deterministic

    def test_subtree_deterministic(self, small_f7):
        a = build_classifier(small_f7, algorithm="subtree", n_procs=4)
        b = build_classifier(small_f7, algorithm="subtree", n_procs=4)
        assert a.build_time == b.build_time


class TestRealThreads:
    """The same scheme code under true OS-thread preemption."""

    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_threads_build_reference_tree(
        self, small_f2, reference_f2, algorithm
    ):
        result = build_classifier(
            small_f2, algorithm=algorithm, n_procs=4, runtime="threads"
        )
        assert result.tree.signature() == reference_f2

    def test_threads_repeatable(self, small_f7, reference_f7):
        for _ in range(3):
            result = build_classifier(
                small_f7, algorithm="mwk", n_procs=3, runtime="threads"
            )
            assert result.tree.signature() == reference_f7


class TestTimingSanity:
    def test_parallel_never_slower_than_half_serial_efficiency(self, small_f7):
        """4 processors give at least some speedup on a CPU-bound build."""
        t1 = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(1), n_procs=1
        ).build_time
        t4 = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(4), n_procs=4
        ).build_time
        assert t4 < t1
        assert t1 / t4 > 1.5

    def test_mwk_not_slower_than_basic(self, small_f7):
        """MWK removes BASIC's serial W bottleneck (paper §3.2.3)."""
        basic = build_classifier(
            small_f7, algorithm="basic", machine=machine_b(4), n_procs=4
        ).build_time
        mwk = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(4), n_procs=4
        ).build_time
        assert mwk <= basic * 1.05
