"""Builder edge cases added after the main suites."""

import pytest

from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.smp.machine import machine_b


class TestBuilderEdges:
    def test_parallel_setup_with_threads_runtime(self, small_f2):
        """parallel_setup only applies to the virtual runtime; with real
        threads it falls back to the serial setup and still works."""
        result = build_classifier(
            small_f2,
            algorithm="mwk",
            n_procs=2,
            runtime="threads",
            parallel_setup=True,
        )
        assert result.tree.root is not None

    def test_two_record_dataset(self, tiny_schema):
        import numpy as np

        from repro.data.dataset import Dataset

        data = Dataset(
            tiny_schema,
            {
                "age": np.array([1.0, 2.0]),
                "car": np.array([0, 1], dtype=np.int64),
            },
            np.array([0, 1], dtype=np.int32),
        )
        tree = build_classifier(data).tree
        assert not tree.root.is_leaf  # a perfect 1-vs-1 split exists
        assert tree.root.left.is_leaf and tree.root.right.is_leaf

    def test_more_processors_than_attributes(self, small_f2):
        """P > d: the dynamic scheduler leaves processors idle but the
        build must stay correct."""
        reference = build_classifier(small_f2, algorithm="serial").tree
        result = build_classifier(
            small_f2, algorithm="basic", machine=machine_b(16), n_procs=16
        )
        assert result.tree.signature() == reference.signature()

    def test_window_larger_than_any_level(self, small_f2):
        reference = build_classifier(small_f2, algorithm="serial").tree
        result = build_classifier(
            small_f2,
            algorithm="mwk",
            n_procs=4,
            params=BuildParams(window=1000),
        )
        assert result.tree.signature() == reference.signature()

    def test_min_gini_improvement_high_stops_early(self, small_f7):
        strict = build_classifier(
            small_f7,
            algorithm="serial",
            params=BuildParams(min_gini_improvement=0.2),
        ).tree
        default = build_classifier(small_f7, algorithm="serial").tree
        assert strict.n_nodes < default.n_nodes
