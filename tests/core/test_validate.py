"""Tests for the tree invariant checker."""

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.core.tree import DecisionTree, Node, Split
from repro.core.validate import check_tree


class TestValidTrees:
    @pytest.mark.parametrize(
        "algorithm", ["serial", "basic", "fwk", "mwk", "subtree", "recordpar"]
    )
    def test_built_trees_are_valid(self, small_f7, algorithm):
        result = build_classifier(small_f7, algorithm=algorithm, n_procs=3)
        assert check_tree(result.tree) == []

    def test_valid_against_dataset(self, small_f2):
        tree = build_classifier(small_f2).tree
        assert check_tree(tree, small_f2) == []

    def test_pruned_tree_valid(self, small_f7):
        from repro.classify.prune import mdl_prune

        tree = build_classifier(small_f7).tree
        pruned, _ = mdl_prune(tree)
        assert check_tree(pruned) == []

    def test_sliq_tree_valid(self, small_f2):
        from repro.sliq import build_sliq

        assert check_tree(build_sliq(small_f2), small_f2) == []


class TestInvalidTrees:
    def make_tree(self, schema):
        root = Node(0, 0, np.array([2, 2]))
        left = Node(1, 1, np.array([2, 0]))
        left.make_leaf()
        right = Node(2, 1, np.array([0, 2]))
        right.make_leaf()
        root.set_split(Split("age", 0, threshold=5.0), left, right)
        return DecisionTree(schema, root)

    def test_bad_class_partition(self, tiny_schema):
        tree = self.make_tree(tiny_schema)
        tree.root.left.class_counts = np.array([1, 1])
        assert any("partition" in p for p in check_tree(tree))

    def test_bad_child_ids(self, tiny_schema):
        tree = self.make_tree(tiny_schema)
        tree.root.left.node_id = 99
        assert any("heap-numbered" in p for p in check_tree(tree))

    def test_bad_depth(self, tiny_schema):
        tree = self.make_tree(tiny_schema)
        tree.root.right.depth = 5
        assert any("depth" in p for p in check_tree(tree))

    def test_unknown_attribute(self, tiny_schema):
        tree = self.make_tree(tiny_schema)
        object.__setattr__(tree.root.split, "attribute", "ghost")
        assert any("unknown split attribute" in p for p in check_tree(tree))

    def test_subset_on_continuous(self, tiny_schema):
        root = Node(0, 0, np.array([2, 2]))
        left = Node(1, 1, np.array([2, 0]))
        left.make_leaf()
        right = Node(2, 1, np.array([0, 2]))
        right.make_leaf()
        root.set_split(Split("age", 0, subset=frozenset({1})), left, right)
        tree = DecisionTree(tiny_schema, root)
        assert any("subset split on continuous" in p for p in check_tree(tree))

    def test_subset_outside_domain(self, tiny_schema):
        root = Node(0, 0, np.array([2, 2]))
        left = Node(1, 1, np.array([2, 0]))
        left.make_leaf()
        right = Node(2, 1, np.array([0, 2]))
        right.make_leaf()
        root.set_split(Split("car", 1, subset=frozenset({7})), left, right)
        tree = DecisionTree(tiny_schema, root)
        assert any("outside attribute domain" in p for p in check_tree(tree))

    def test_dataset_mismatch_detected(self, tiny_schema, car_insurance):
        tree = self.make_tree(tiny_schema)
        problems = check_tree(tree, car_insurance)
        assert problems  # different schema entirely
