"""Unit tests for the decision-tree model."""

import numpy as np
import pytest

from repro.core.tree import DecisionTree, Node, Split
from repro.data.schema import Attribute, AttributeKind, Schema


@pytest.fixture
def schema():
    return Schema(
        [
            Attribute("age", AttributeKind.CONTINUOUS),
            Attribute("car", AttributeKind.CATEGORICAL, 3),
        ],
        class_names=("high", "low"),
    )


def leaf(node_id, counts, depth=1):
    n = Node(node_id, depth, np.array(counts))
    n.make_leaf()
    return n


@pytest.fixture
def small_tree(schema):
    """age < 25 -> high; else car in {1} -> high else low."""
    root = Node(0, 0, np.array([4, 2]))
    young = leaf(1, [2, 0])
    old = Node(2, 1, np.array([2, 2]))
    sporty = leaf(5, [2, 0], depth=2)
    other = leaf(6, [0, 2], depth=2)
    old.set_split(
        Split("car", 1, subset=frozenset({1})), sporty, other
    )
    root.set_split(Split("age", 0, threshold=25.0), young, old)
    return DecisionTree(schema, root)


class TestSplit:
    def test_exactly_one_test(self):
        with pytest.raises(ValueError, match="exactly one"):
            Split("x", 0)
        with pytest.raises(ValueError, match="exactly one"):
            Split("x", 0, threshold=1.0, subset=frozenset({1}))

    def test_goes_left_continuous(self):
        s = Split("age", 0, threshold=25.0)
        assert s.goes_left(20.0)
        assert not s.goes_left(25.0)  # boundary goes right

    def test_goes_left_categorical(self):
        s = Split("car", 1, subset=frozenset({0, 2}))
        assert s.goes_left(0) and s.goes_left(2)
        assert not s.goes_left(1)

    def test_describe(self):
        assert Split("age", 0, threshold=25.0).describe() == "age < 25"
        assert Split("car", 1, subset=frozenset({2, 0})).describe() == (
            "car in {0, 2}"
        )


class TestNode:
    def test_leaf_properties(self):
        n = leaf(1, [3, 1])
        assert n.is_leaf
        assert n.majority_class == 0
        assert n.n_records == 4
        assert not n.is_pure

    def test_pure(self):
        assert leaf(1, [0, 5]).is_pure
        assert leaf(1, [0, 0]).is_pure  # vacuously pure

    def test_route(self, small_tree):
        root = small_tree.root
        assert root.route(20.0).node_id == 1
        assert root.route(30.0).node_id == 2

    def test_route_on_leaf_rejected(self, small_tree):
        with pytest.raises(ValueError, match="leaf"):
            small_tree.root.left.route(1.0)


class TestDecisionTree:
    def test_counts(self, small_tree):
        assert small_tree.n_nodes == 5
        assert small_tree.n_leaves == 3
        assert small_tree.n_levels == 3

    def test_levels(self, small_tree):
        levels = small_tree.levels()
        assert [len(lv) for lv in levels] == [1, 2, 2]

    def test_max_leaves_per_level(self, small_tree):
        assert small_tree.max_leaves_per_level == 2

    def test_iter_nodes_breadth_first(self, small_tree):
        ids = [n.node_id for n in small_tree.iter_nodes()]
        assert ids == [0, 1, 2, 5, 6]

    def test_signature_equality(self, small_tree, schema):
        other = DecisionTree(schema, small_tree.root)
        assert small_tree.signature() == other.signature()

    def test_signature_detects_differences(self, small_tree, schema):
        root2 = Node(0, 0, np.array([4, 2]))
        root2.set_split(
            Split("age", 0, threshold=30.0),  # different threshold
            leaf(1, [2, 0]),
            leaf(2, [2, 2]),
        )
        assert small_tree.signature() != DecisionTree(schema, root2).signature()

    def test_render_contains_tests_and_classes(self, small_tree):
        text = small_tree.render()
        assert "age < 25" in text
        assert "car in {1}" in text
        assert "class high" in text and "class low" in text

    def test_render_depth_cutoff(self, small_tree):
        shallow = small_tree.render(max_depth=0)
        assert "car in" not in shallow
