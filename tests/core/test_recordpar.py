"""Scheme-specific tests for record data parallelism."""

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.core.recordpar import chunk_bounds
from repro.smp.machine import machine_b
from repro.sprint.gini import (
    best_continuous_split,
    best_continuous_split_chunk,
)


class TestChunkBounds:
    def test_even_division(self):
        bounds = [chunk_bounds(12, p, 4) for p in range(4)]
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_spread_to_low_pids(self):
        bounds = [chunk_bounds(10, p, 4) for p in range(4)]
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_partition_is_exact(self):
        for n in (0, 1, 5, 17, 100):
            for n_procs in (1, 2, 3, 7):
                ranges = [chunk_bounds(n, p, n_procs) for p in range(n_procs)]
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n
                for (_lo1, hi), (lo, _hi2) in zip(ranges, ranges[1:]):
                    assert hi == lo

    def test_more_procs_than_records(self):
        bounds = [chunk_bounds(2, p, 4) for p in range(4)]
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]


class TestChunkedEvaluation:
    @pytest.mark.parametrize("n_procs", [1, 2, 3, 5])
    def test_chunked_matches_global(self, n_procs):
        """Reducing per-chunk bests reproduces the global best split."""
        rng = np.random.default_rng(7)
        n = 97
        values = np.sort(rng.integers(0, 25, n).astype(np.float64))
        classes = rng.integers(0, 2, n).astype(np.int32)
        totals = np.bincount(classes, minlength=2)

        reference = best_continuous_split(values, classes, 2)

        best = None
        for pid in range(n_procs):
            lo, hi = chunk_bounds(n, pid, n_procs)
            chunk_v = values[lo:hi]
            chunk_c = classes[lo:hi]
            next_value = float(values[hi]) if hi < n else None
            prefix = np.bincount(classes[:lo], minlength=2)
            entry = best_continuous_split_chunk(
                chunk_v, chunk_c, next_value, prefix, totals, n
            )
            if entry is None:
                continue
            if best is None or (entry[0], entry[1]) < (best[0], best[1]):
                best = entry
        assert (best is None) == (reference is None)
        if reference is not None:
            gini_value, _boundary, threshold, n_left = best
            assert gini_value == pytest.approx(reference.weighted_gini)
            assert threshold == pytest.approx(reference.threshold)
            assert n_left == reference.n_left

    def test_empty_chunk(self):
        out = best_continuous_split_chunk(
            np.array([]), np.array([], dtype=np.int32), 1.0,
            np.zeros(2, dtype=np.int64), np.array([3, 3]), 6,
        )
        assert out is None

    def test_constant_chunk_without_boundary(self):
        out = best_continuous_split_chunk(
            np.array([2.0, 2.0]), np.array([0, 1], dtype=np.int32), 2.0,
            np.zeros(2, dtype=np.int64), np.array([2, 2]), 4,
        )
        assert out is None  # next chunk starts with the same value


class TestRecordParScheme:
    @pytest.mark.parametrize("n_procs", [1, 2, 4])
    def test_tree_equality(self, small_f2, n_procs):
        reference = build_classifier(small_f2, algorithm="serial").tree
        result = build_classifier(
            small_f2, algorithm="recordpar",
            machine=machine_b(n_procs), n_procs=n_procs,
        )
        assert result.tree.signature() == reference.signature()

    def test_tree_equality_complex(self, small_f7):
        reference = build_classifier(small_f7, algorithm="serial").tree
        result = build_classifier(
            small_f7, algorithm="recordpar", machine=machine_b(3), n_procs=3
        )
        assert result.tree.signature() == reference.signature()

    def test_more_synchronization_than_mwk(self, small_f7):
        """The paper's claim: record parallelism over-synchronizes."""
        rp = build_classifier(
            small_f7, algorithm="recordpar", machine=machine_b(4), n_procs=4
        )
        mwk = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(4), n_procs=4
        )
        assert sum(rp.stats.barrier_wait) > sum(mwk.stats.barrier_wait)

    def test_threads_runtime(self, small_f2):
        reference = build_classifier(small_f2, algorithm="serial").tree
        result = build_classifier(
            small_f2, algorithm="recordpar", n_procs=3, runtime="threads"
        )
        assert result.tree.signature() == reference.signature()

    def test_segments_cleaned_up(self, small_f2):
        from repro.storage.backends import MemoryBackend

        backend = MemoryBackend()
        build_classifier(
            small_f2, algorithm="recordpar", n_procs=2, backend=backend
        )
        assert backend.keys() == []
