"""Unit tests for the public build_classifier entry point."""

import math

import pytest

from repro.core.builder import ALGORITHMS, build_classifier
from repro.core.params import BuildParams
from repro.smp.machine import machine_a, machine_b
from repro.storage.backends import DiskBackend, MemoryBackend


class TestAPI:
    def test_algorithm_registry(self):
        assert set(ALGORITHMS) == {
            "serial", "basic", "fwk", "mwk", "subtree", "recordpar",
        }

    def test_unknown_algorithm(self, small_f2):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_classifier(small_f2, algorithm="quantum")

    def test_unknown_runtime(self, small_f2):
        with pytest.raises(ValueError, match="runtime"):
            build_classifier(small_f2, runtime="gpu")

    def test_empty_dataset_rejected(self, tiny_schema):
        import numpy as np

        from repro.data.dataset import Dataset

        empty = Dataset(
            tiny_schema,
            {"age": np.array([]), "car": np.array([], dtype=np.int64)},
            np.array([], dtype=np.int32),
        )
        with pytest.raises(ValueError, match="empty"):
            build_classifier(empty)

    def test_serial_forces_one_proc(self, small_f2):
        result = build_classifier(small_f2, algorithm="serial", n_procs=8)
        assert result.n_procs == 1

    def test_default_machine(self, small_f2):
        result = build_classifier(small_f2, algorithm="mwk", n_procs=2)
        assert result.machine.name == "machine-b"
        assert result.n_procs == 2


class TestTimings:
    def test_breakdown_keys(self, small_f2):
        result = build_classifier(small_f2, algorithm="serial")
        assert set(result.timings) == {"setup", "sort", "build", "total"}
        assert result.total_time == pytest.approx(
            result.timings["setup"]
            + result.timings["sort"]
            + result.timings["build"]
        )

    def test_setup_sort_independent_of_procs(self, small_f2):
        """Setup and sort are serial phases (paper §4.1)."""
        r1 = build_classifier(small_f2, algorithm="mwk",
                              machine=machine_b(1), n_procs=1)
        r4 = build_classifier(small_f2, algorithm="mwk",
                              machine=machine_b(4), n_procs=4)
        assert r1.timings["setup"] == pytest.approx(r4.timings["setup"])
        assert r1.timings["sort"] == pytest.approx(r4.timings["sort"])

    def test_stats_present_for_virtual(self, small_f2):
        result = build_classifier(small_f2, algorithm="mwk", n_procs=2)
        assert result.stats is not None
        assert len(result.stats.busy) == 2

    def test_stats_absent_for_threads(self, small_f2):
        result = build_classifier(
            small_f2, algorithm="mwk", n_procs=2, runtime="threads"
        )
        assert result.stats is None

    def test_machine_a_slower_than_machine_b(self, small_f7):
        """Out-of-core I/O makes the disk configuration slower."""
        a = build_classifier(small_f7, algorithm="serial",
                             machine=machine_a(1))
        b = build_classifier(small_f7, algorithm="serial",
                             machine=machine_b(1))
        assert a.build_time > b.build_time


class TestBackends:
    def test_disk_backend_end_to_end(self, small_f2, tmp_path):
        """A fully disk-resident build produces the reference tree."""
        reference = build_classifier(small_f2, algorithm="serial").tree
        backend = DiskBackend(str(tmp_path / "lists.pg"), buffer_capacity=32)
        result = build_classifier(
            small_f2, algorithm="mwk", n_procs=2, backend=backend
        )
        assert result.tree.signature() == reference.signature()
        backend.close()

    def test_disk_backend_actually_touches_disk(self, small_f2, tmp_path):
        backend = DiskBackend(str(tmp_path / "lists.pg"), buffer_capacity=4)
        build_classifier(small_f2, algorithm="serial", backend=backend)
        assert backend.buffer.stats.bytes_written > 0
        backend.close()

    def test_dataset_name_propagated(self, small_f2):
        result = build_classifier(small_f2)
        assert result.dataset_name == small_f2.name
