"""Serialize v3: forest containers, migration, and offset validation."""

import copy
import json

import numpy as np
import pytest

from repro.classify import treegen
from repro.classify.forest import (
    CompiledForest,
    compile_forest,
    predict_forest_oracle,
)
from repro.core.builder import build_classifier
from repro.core.serialize import (
    FOREST_FORMAT_VERSION,
    forest_from_dict,
    forest_to_dict,
    load_model,
    load_tree,
    model_from_dict,
    model_to_dict,
    save_model,
    save_tree,
    tree_from_dict,
)
from repro.core.tree import DecisionTree
from repro.ensemble import train_forest


def _random_forest(seed, n_trees=4, max_depth=6):
    rng = np.random.default_rng(seed)
    schema = treegen.random_schema(rng)
    trees = [
        treegen.random_tree(schema, max_depth=max_depth, seed=seed * 100 + t)
        for t in range(n_trees)
    ]
    return schema, compile_forest(trees)


class TestForestRoundTrip:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_forest_predictions_preserved(self, seed):
        """Property: any random forest round-trips bit-identically."""
        schema, forest = _random_forest(seed)
        restored = forest_from_dict(forest_to_dict(forest))
        assert isinstance(restored, CompiledForest)
        assert restored.n_trees == forest.n_trees
        assert restored.n_nodes == forest.n_nodes
        columns = treegen.random_columns(schema, 503, seed=seed, wild=True)
        np.testing.assert_array_equal(
            restored.predict(columns), forest.predict(columns)
        )

    def test_trained_forest_file_round_trip(self, small_f2, tmp_path):
        result = train_forest(small_f2, 5, subsample=0.7, feature_frac=0.6,
                              seed=3)
        path = str(tmp_path / "forest.json")
        save_model(result.forest, path)
        restored = load_model(path)
        np.testing.assert_array_equal(
            restored.predict(small_f2),
            predict_forest_oracle(result.trees, small_f2),
        )
        assert [t.signature() for t in (m.to_tree() for m in restored.trees)] \
            == [t.signature() for t in result.trees]

    def test_document_shape(self, small_f2, tmp_path):
        result = train_forest(small_f2, 3, seed=1)
        path = str(tmp_path / "forest.json")
        save_model(result.forest, path)
        with open(path) as f:
            doc = json.load(f)
        assert doc["format"] == "repro-decision-tree"
        assert doc["version"] == FOREST_FORMAT_VERSION
        assert doc["kind"] == "forest"
        assert doc["n_trees"] == 3
        offsets = doc["tree_offsets"]
        assert offsets[0] == 0 and offsets[-1] == doc["nodes"]["count"]
        assert offsets == sorted(offsets)

    def test_splits_survive_round_trip(self, car_insurance):
        """Categorical subsets inside member trees stay exact."""
        trees = [build_classifier(car_insurance).tree for _ in range(2)]
        restored = forest_from_dict(forest_to_dict(compile_forest(trees)))
        node = restored.trees[0].to_tree().root.right
        assert node.split.subset == frozenset({1})


class TestMigration:
    def test_v2_single_tree_still_loads_via_model_api(self, small_f2,
                                                      tmp_path):
        """Forward compat: v2 files keep working through load_model."""
        tree = build_classifier(small_f2).tree
        path = str(tmp_path / "tree.json")
        save_tree(tree, path)
        model = load_model(path)
        assert isinstance(model, DecisionTree)
        assert model.signature() == tree.signature()

    def test_v1_single_tree_still_loads_via_model_api(self, small_f2,
                                                      tmp_path):
        tree = build_classifier(small_f2).tree
        path = str(tmp_path / "tree.json")
        save_tree(tree, path, version=1)
        assert load_model(path).signature() == tree.signature()

    def test_save_model_writes_trees_as_v2(self, small_f2, tmp_path):
        tree = build_classifier(small_f2).tree
        path = str(tmp_path / "tree.json")
        save_model(tree, path)
        with open(path) as f:
            assert json.load(f)["version"] == 2
        assert load_tree(path).signature() == tree.signature()

    def test_load_tree_rejects_forest_with_pointed_message(self, small_f2,
                                                           tmp_path):
        result = train_forest(small_f2, 2, seed=1)
        path = str(tmp_path / "forest.json")
        save_model(result.forest, path)
        with pytest.raises(ValueError, match="forest container"):
            load_tree(path)

    def test_tree_from_dict_rejects_forest(self, small_f2):
        result = train_forest(small_f2, 2, seed=1)
        with pytest.raises(ValueError, match="load_model"):
            tree_from_dict(forest_to_dict(result.forest))

    def test_model_to_dict_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            model_to_dict({"not": "a model"})

    def test_model_from_dict_rejects_unknown_version(self, small_f2):
        result = train_forest(small_f2, 2, seed=1)
        doc = forest_to_dict(result.forest)
        doc["version"] = 9
        with pytest.raises(ValueError, match="version"):
            model_from_dict(doc)


class TestOffsetValidation:
    @pytest.fixture()
    def doc(self, small_f2):
        result = train_forest(small_f2, 3, subsample=0.5, seed=2)
        return forest_to_dict(result.forest)

    def test_self_check(self, doc):
        forest_from_dict(copy.deepcopy(doc))  # sanity: valid as produced

    def test_negative_offset_rejected(self, doc):
        doc["tree_offsets"][1] = -3
        with pytest.raises(ValueError, match="tree_offsets"):
            forest_from_dict(doc)

    def test_overlapping_offsets_rejected(self, doc):
        doc["tree_offsets"][2] = doc["tree_offsets"][1] - 1
        with pytest.raises(ValueError, match="tree_offsets"):
            forest_from_dict(doc)

    def test_equal_offsets_rejected(self, doc):
        """An empty tree range is as corrupt as an overlapping one."""
        doc["tree_offsets"][2] = doc["tree_offsets"][1]
        with pytest.raises(ValueError, match="tree_offsets"):
            forest_from_dict(doc)

    def test_wrong_length_rejected(self, doc):
        doc["tree_offsets"] = doc["tree_offsets"][:-1]
        with pytest.raises(ValueError, match="entries"):
            forest_from_dict(doc)

    def test_not_starting_at_zero_rejected(self, doc):
        doc["tree_offsets"] = [o + 1 for o in doc["tree_offsets"]]
        with pytest.raises(ValueError, match="start at 0"):
            forest_from_dict(doc)

    def test_end_must_match_node_count(self, doc):
        doc["tree_offsets"][-1] += 7
        with pytest.raises(ValueError, match="node table"):
            forest_from_dict(doc)

    def test_non_integer_offsets_rejected(self, doc):
        doc["tree_offsets"][1] = float(doc["tree_offsets"][1])
        with pytest.raises(ValueError, match="integers"):
            forest_from_dict(doc)

    def test_cross_tree_child_rejected(self, doc):
        """A child index escaping its own tree's row range is corrupt
        even when it is a valid row of the concatenated table."""
        start = doc["tree_offsets"][1]
        # First internal node of tree 1: point its left child at tree 0.
        for i in range(start, doc["tree_offsets"][2]):
            if doc["nodes"]["feature"][i] >= 0:
                doc["nodes"]["left"][i] = 0
                break
        with pytest.raises(ValueError, match="escapes"):
            forest_from_dict(doc)

    def test_missing_n_trees_rejected(self, doc):
        del doc["n_trees"]
        with pytest.raises(ValueError, match="n_trees"):
            forest_from_dict(doc)
