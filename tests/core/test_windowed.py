"""Scheme-specific tests for FWK and MWK window machinery."""

import pytest

from repro.core.builder import build_classifier
from repro.core.fwk import window_blocks
from repro.core.params import BuildParams
from repro.smp.machine import machine_b


class TestWindowBlocks:
    def test_exact_multiple(self):
        assert [list(r) for r in window_blocks(6, 3)] == [[0, 1, 2], [3, 4, 5]]

    def test_ragged_tail(self):
        assert [list(r) for r in window_blocks(5, 2)] == [[0, 1], [2, 3], [4]]

    def test_window_larger_than_level(self):
        assert [list(r) for r in window_blocks(2, 8)] == [[0, 1]]

    def test_empty(self):
        assert window_blocks(0, 4) == []


class TestWindowBehaviour:
    def test_window_one_fwk_equals_basic_tree(self, small_f2):
        """K=1 degenerates to per-leaf barriers; tree is unchanged."""
        base = build_classifier(small_f2, algorithm="basic", n_procs=2)
        fwk = build_classifier(
            small_f2, algorithm="fwk", n_procs=2, params=BuildParams(window=1)
        )
        assert fwk.tree.signature() == base.tree.signature()

    def test_larger_window_fewer_barrier_syncs_fwk(self, small_f7):
        """Bigger K means fewer per-block barriers in FWK (paper §3.2.2)."""
        k1 = build_classifier(
            small_f7, algorithm="fwk", machine=machine_b(4), n_procs=4,
            params=BuildParams(window=1),
        )
        k8 = build_classifier(
            small_f7, algorithm="fwk", machine=machine_b(4), n_procs=4,
            params=BuildParams(window=8),
        )
        assert sum(k8.stats.barrier_wait) <= sum(k1.stats.barrier_wait)

    def test_mwk_less_barrier_wait_than_basic(self, small_f7):
        """MWK replaces barriers with per-leaf conditions (paper §3.2.3)."""
        basic = build_classifier(
            small_f7, algorithm="basic", machine=machine_b(4), n_procs=4
        )
        mwk = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(4), n_procs=4
        )
        assert sum(mwk.stats.barrier_wait) < sum(basic.stats.barrier_wait)

    def test_mwk_uses_condition_variables(self, small_f7):
        mwk = build_classifier(
            small_f7, algorithm="mwk", machine=machine_b(4), n_procs=4
        )
        basic = build_classifier(
            small_f7, algorithm="basic", machine=machine_b(4), n_procs=4
        )
        assert sum(mwk.stats.condvar_wait) >= 0.0
        assert sum(basic.stats.condvar_wait) == 0.0
