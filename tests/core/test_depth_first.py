"""Tests for the depth-first growth strawman."""

import numpy as np
import pytest

from repro.core.builder import build_classifier
from repro.core.context import BuildContext, write_root_segments
from repro.core.params import BuildParams
from repro.core.serial import build_serial, build_serial_depth_first
from repro.smp.machine import machine_a, machine_b
from repro.smp.runtime import VirtualSMP
from repro.storage.backends import MemoryBackend


def build_df(dataset, machine):
    rt = VirtualSMP(machine, 1)
    ctx = BuildContext(dataset, rt, MemoryBackend(), BuildParams())
    write_root_segments(ctx)
    tree = build_serial_depth_first(ctx)
    return tree, rt


class TestDepthFirst:
    def test_same_tree_as_breadth_first(self, small_f7):
        reference = build_classifier(small_f7, algorithm="serial").tree
        tree, _ = build_df(small_f7, machine_b(1))
        assert tree.signature() == reference.signature()

    def test_same_tree_f2(self, small_f2):
        reference = build_classifier(small_f2, algorithm="serial").tree
        tree, _ = build_df(small_f2, machine_b(1))
        assert tree.signature() == reference.signature()

    def test_requires_single_processor(self, small_f2):
        rt = VirtualSMP(machine_b(2), 2)
        ctx = BuildContext(small_f2, rt, MemoryBackend(), BuildParams())
        with pytest.raises(ValueError, match="1-processor"):
            build_serial_depth_first(ctx)

    def test_more_io_time_on_disk_machine(self, small_f7):
        """Depth-first destroys the attribute-major sequential sweeps;
        on the disk machine it pays more seek time."""
        bf = build_classifier(
            small_f7, algorithm="serial", machine=machine_a(1)
        )
        _, rt_df = build_df(small_f7, machine_a(1))
        assert sum(rt_df.stats.io_time) >= sum(bf.stats.io_time) * 0.95

    def test_segments_cleaned_up(self, small_f2):
        rt = VirtualSMP(machine_b(1), 1)
        backend = MemoryBackend()
        ctx = BuildContext(small_f2, rt, backend, BuildParams())
        write_root_segments(ctx)
        build_serial_depth_first(ctx)
        assert backend.keys() == []


class TestNonFiniteValidation:
    def test_nan_rejected(self, tiny_schema):
        from repro.data.dataset import Dataset

        with pytest.raises(ValueError, match="non-finite"):
            Dataset(
                tiny_schema,
                {
                    "age": np.array([1.0, np.nan]),
                    "car": np.array([0, 1], dtype=np.int64),
                },
                np.array([0, 1], dtype=np.int32),
            )

    def test_inf_rejected(self, tiny_schema):
        from repro.data.dataset import Dataset

        with pytest.raises(ValueError, match="non-finite"):
            Dataset(
                tiny_schema,
                {
                    "age": np.array([1.0, np.inf]),
                    "car": np.array([0, 1], dtype=np.int64),
                },
                np.array([0, 1], dtype=np.int32),
            )
