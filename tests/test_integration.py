"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BuildParams,
    DatasetSpec,
    accuracy,
    build_classifier,
    generate_dataset,
    machine_a,
    machine_b,
    mdl_prune,
    predict,
)
from repro.classify.sql import tree_to_sql_case
from repro.core.serialize import load_tree, save_tree
from repro.storage.backends import DiskBackend


class TestLearnability:
    """Every Quest function is learnable to high accuracy from clean data."""

    @pytest.mark.parametrize("function", range(1, 11))
    def test_every_quest_function(self, function):
        data = generate_dataset(
            DatasetSpec(function, 9, 3000, seed=function)
        )
        train, test = data.split(0.7, seed=0)
        tree = build_classifier(train, algorithm="mwk", n_procs=2).tree
        assert accuracy(tree, test) > 0.85, f"function {function}"

    def test_simple_function_learns_better_than_complex(self):
        """F2's axis-parallel boundary is easier than F7's oblique one."""
        scores = {}
        for fn in (2, 7):
            data = generate_dataset(DatasetSpec(fn, 9, 4000, seed=1))
            train, test = data.split(0.7, seed=0)
            tree = build_classifier(train).tree
            scores[fn] = accuracy(tree, test)
        assert scores[2] > scores[7]


class TestFullPipeline:
    def test_disk_machine_a_subtree_pipeline(self, tmp_path):
        """The most adversarial combination: disk-resident lists, the
        out-of-core machine model, task parallelism, pruning, SQL export
        and persistence — all in one pass."""
        data = generate_dataset(DatasetSpec(7, 12, 1500, seed=9,
                                            perturbation=0.05))
        train, test = data.split(0.8, seed=1)

        backend = DiskBackend(str(tmp_path / "lists.pg"), buffer_capacity=48)
        result = build_classifier(
            train,
            algorithm="subtree",
            machine=machine_a(4),
            n_procs=4,
            backend=backend,
        )
        backend.close()

        pruned, report = mdl_prune(result.tree)
        assert report.nodes_after <= report.nodes_before
        assert accuracy(pruned, test) > 0.75

        sql = tree_to_sql_case(pruned)
        assert "CASE WHEN" in sql or "SELECT" in sql

        path = str(tmp_path / "model.json")
        save_tree(pruned, path)
        restored = load_tree(path)
        np.testing.assert_array_equal(
            predict(restored, test), predict(pruned, test)
        )

    def test_serial_total_time_decomposition(self):
        data = generate_dataset(DatasetSpec(2, 9, 2000, seed=4))
        result = build_classifier(data, algorithm="serial",
                                  machine=machine_a(1))
        t = result.timings
        assert t["total"] == pytest.approx(
            t["setup"] + t["sort"] + t["build"]
        )
        assert all(v > 0 for v in t.values())


@settings(max_examples=8, deadline=None)
@given(
    function=st.sampled_from([1, 2, 3, 7]),
    n_records=st.integers(30, 300),
    seed=st.integers(0, 1000),
    algorithm=st.sampled_from(["basic", "fwk", "mwk", "subtree", "recordpar"]),
    n_procs=st.integers(1, 5),
)
def test_any_scheme_equals_serial_property(
    function, n_records, seed, algorithm, n_procs
):
    """Property: arbitrary (dataset, scheme, P) matches serial SPRINT."""
    data = generate_dataset(DatasetSpec(function, 9, n_records, seed=seed))
    reference = build_classifier(data, algorithm="serial").tree
    result = build_classifier(
        data, algorithm=algorithm, machine=machine_b(n_procs), n_procs=n_procs
    )
    assert result.tree.signature() == reference.signature()


class TestScaleInvariance:
    def test_build_time_roughly_linear_in_records(self):
        """The cost model scales linearly with record count, which is
        what justifies running benchmarks at laptop scale."""
        times = {}
        for n in (1000, 4000):
            data = generate_dataset(DatasetSpec(7, 9, n, seed=2))
            times[n] = build_classifier(
                data, algorithm="mwk", machine=machine_b(4), n_procs=4
            ).build_time
        ratio = times[4000] / times[1000]
        assert 2.5 < ratio < 7.0  # superlinear only through extra levels

    def test_speedup_shape_stable_across_scale(self):
        """Speedups at 1K and 4K records agree within a loose band."""
        speedups = {}
        for n in (1000, 4000):
            data = generate_dataset(DatasetSpec(7, 9, n, seed=2))
            t1 = build_classifier(
                data, algorithm="mwk", machine=machine_b(1), n_procs=1
            ).build_time
            t4 = build_classifier(
                data, algorithm="mwk", machine=machine_b(4), n_procs=4
            ).build_time
            speedups[n] = t1 / t4
        assert abs(speedups[1000] - speedups[4000]) < 1.2
