"""Shard-suite helpers: baseline trees and leak scanning."""

from __future__ import annotations

import glob

import pytest

from repro.core.builder import build_classifier
from repro.shard.pool import shutdown_pools
from repro.shard.shm import NAME_PREFIX, live_segments
from repro.storage.temp import live_spill_dirs


def shm_leaks() -> list:
    """Segments this package created that are still visible in /dev/shm."""
    return sorted(glob.glob(f"/dev/shm/{NAME_PREFIX}-*"))


@pytest.fixture(scope="session")
def serial_f2(small_f2):
    """The uniprocessor baseline every sharded tree must reproduce."""
    return build_classifier(small_f2, algorithm="serial").tree


@pytest.fixture(scope="session")
def serial_f7(small_f7):
    return build_classifier(small_f7, algorithm="serial").tree


@pytest.fixture(autouse=True)
def no_leaks_around_each_test():
    """Every test must leave /dev/shm and the spill registry clean."""
    yield
    assert live_segments() == {}
    assert live_spill_dirs() == set()
    assert shm_leaks() == []


@pytest.fixture(scope="session", autouse=True)
def shutdown_pools_at_end():
    yield
    shutdown_pools()
