"""Differential identity: the sharded build vs the serial baseline.

``merge="exact"`` must be *bit-identical* — same splits, same
thresholds, same per-node class histograms — for any shard count,
because every merged statistic is integer-exact and every float
expression mirrors the global scan's spelling.  ``merge="vote"`` is
exact whenever the ballot covers all attributes, and merely a valid
tree otherwise.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_classifier
from repro.classify.metrics import accuracy


def build_procs(dataset, **kw):
    kw.setdefault("runtime", "procs")
    return build_classifier(dataset, **kw)


class TestExactIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_simple_function(self, small_f2, serial_f2, shards):
        res = build_procs(small_f2, shards=shards, merge="exact")
        assert res.tree.signature() == serial_f2.signature()
        assert res.algorithm == "shard-exact"
        assert res.n_procs == shards

    @pytest.mark.parametrize("shards", [2, 3])
    def test_complex_function(self, small_f7, serial_f7, shards):
        res = build_procs(small_f7, shards=shards, merge="exact")
        assert res.tree.signature() == serial_f7.signature()

    def test_identical_under_spill(self, small_f2, serial_f2):
        """A starved memory budget changes traffic, never the tree."""
        res = build_procs(
            small_f2, shards=2, merge="exact", memory_budget_bytes=4096
        )
        assert res.tree.signature() == serial_f2.signature()
        assert res.shard.spilled_bytes > 0
        assert res.shard.faulted_bytes > 0

    def test_medium_dataset(self, medium_f2):
        serial = build_classifier(medium_f2, algorithm="serial").tree
        res = build_procs(medium_f2, shards=3, merge="exact")
        assert res.tree.signature() == serial.signature()


class TestVoteMerge:
    def test_full_ballot_matches_exact(self, small_f2, serial_f2):
        """k >= n_attrs: every attribute is voted, so vote == exact."""
        res = build_procs(
            small_f2, shards=2, merge="vote",
            vote_k=small_f2.schema.n_attributes,
        )
        assert res.tree.signature() == serial_f2.signature()

    def test_small_ballot_builds_valid_tree(self, small_f2):
        exact = build_procs(small_f2, shards=2, merge="exact")
        vote = build_procs(small_f2, shards=2, merge="vote", vote_k=2)
        assert vote.algorithm == "shard-vote"
        # The restricted exchange must actually save traffic...
        assert vote.shard.bytes_total < exact.shard.bytes_total
        # ...and still learn the function (training fit, not identity).
        assert accuracy(vote.tree, small_f2) > 0.95

    def test_bad_merge_mode_rejected(self, small_f2):
        from repro.shard import ShardBuildError

        with pytest.raises(ShardBuildError):
            build_procs(small_f2, shards=2, merge="median")


class TestRunStats:
    def test_stats_populated(self, small_f2):
        res = build_procs(small_f2, shards=2, merge="exact")
        sh = res.shard
        assert sh.shards == 2
        assert len(sh.worker_pids) == 2
        assert sh.levels > 0
        assert sh.bytes_sent > 0 and sh.bytes_received > 0
        for phase in ("load", "eval", "probe", "split"):
            assert sh.rounds.get(phase, 0) > 0, phase
        assert sh.worker_busy_s >= 0.0
        assert set(res.timings) == {"setup", "sort", "build", "total"}

    def test_vote_round_counted(self, small_f2):
        res = build_procs(small_f2, shards=2, merge="vote", vote_k=2)
        assert res.shard.rounds.get("vote", 0) > 0

    def test_observation_report(self, small_f2):
        from repro.obs.spans import SpanCollector

        collector = SpanCollector()
        res = build_procs(
            small_f2, shards=2, merge="exact", collector=collector
        )
        assert res.observation is not None
        names = {m.name for m in collector.metrics}
        assert "shard_rounds_total" in names
        assert "shard_bytes_total" in names
        # Lane 0 (coordinator) plus one lane per shard recorded time.
        lanes = {iv.pid for iv in collector.intervals}
        assert lanes == {0, 1, 2}
