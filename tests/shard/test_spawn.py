"""Spawn-safety: workers re-initialize per process without recompiling.

Under ``spawn`` a worker starts from a blank interpreter: no inherited
globals, no fork-copied compile cache.  The worker must (a) build the
same tree, and (b) load any native kernels from the shared on-disk
``.so`` cache — ``compiler_invocations()`` counts actual compiler
runs, so a zero from every worker proves the cache was warm, not
rebuilt per process.
"""

from __future__ import annotations

import os

import pytest

from repro._native import cc
from repro.core.builder import build_classifier
from repro.shard.pool import ShardPool, get_pool


class TestSpawn:
    def test_spawn_identity(self, small_f2, serial_f2):
        res = build_classifier(
            small_f2, runtime="procs", shards=2, start_method="spawn"
        )
        assert res.tree.signature() == serial_f2.signature()
        assert res.shard.start_method == "spawn"

    def test_spawn_workers_are_fresh_processes(self, small_f2):
        res = build_classifier(
            small_f2, runtime="procs", shards=2, start_method="spawn"
        )
        assert os.getpid() not in res.shard.worker_pids
        assert len(set(res.shard.worker_pids)) == 2

    def test_spawn_workers_use_so_cache_not_compiler(self, small_f2):
        """No worker may invoke the C compiler when the cache is warm."""
        # Warm the parent-side cache (a no-op when native is gated off).
        build_classifier(small_f2, algorithm="serial")
        pool = get_pool(2, "spawn")
        replies = pool.broadcast("info", None)
        for reply in replies:
            assert reply["compiler_invocations"] == 0
        backends = {r["native_backend"] for r in replies}
        # Workers agree with the parent about native availability.
        parent_native = cc.find_compiler() is not None
        if not parent_native:
            assert backends == {"numpy"}

    def test_spawn_scratch_arena_per_process(self, small_f7):
        """A second spawn build reuses worker-local arenas, not ours."""
        res = build_classifier(
            small_f7, runtime="procs", shards=2, start_method="spawn"
        )
        assert res.tree.n_nodes > 1


class TestPoolReuse:
    def test_same_workers_across_builds(self, small_f2):
        first = build_classifier(small_f2, runtime="procs", shards=2)
        second = build_classifier(small_f2, runtime="procs", shards=2)
        assert first.shard.worker_pids == second.shard.worker_pids

    def test_distinct_pools_per_shard_count(self, small_f2):
        two = build_classifier(small_f2, runtime="procs", shards=2)
        three = build_classifier(small_f2, runtime="procs", shards=3)
        assert set(two.shard.worker_pids).isdisjoint(three.shard.worker_pids)

    def test_explicit_pool_is_not_closed(self, small_f2):
        pool = ShardPool(2)
        try:
            from repro.shard.coordinator import build_sharded

            build_sharded(small_f2, shards=2, pool=pool)
            assert pool.alive
            build_sharded(small_f2, shards=2, pool=pool)
        finally:
            pool.close()
        assert not pool.alive

    def test_pool_rejects_wrong_size(self, small_f2):
        from repro.shard import ShardBuildError
        from repro.shard.coordinator import build_sharded

        pool = ShardPool(2)
        try:
            with pytest.raises(ShardBuildError):
                build_sharded(small_f2, shards=3, pool=pool)
        finally:
            pool.close()
