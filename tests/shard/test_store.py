"""ShardStore: in-memory segment cache with budgeted disk spill."""

from __future__ import annotations

import os

import numpy as np

from repro.shard.store import ShardStore
from repro.sprint.records import CONTINUOUS_RECORD


def records(n, seed=0):
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=CONTINUOUS_RECORD)
    out["value"] = np.sort(rng.normal(size=n))
    out["cls"] = rng.integers(0, 2, size=n)
    out["tid"] = np.arange(n)
    return out


class TestMemoryPath:
    def test_roundtrip(self, tmp_path):
        store = ShardStore(memory_budget_bytes=None, spill_dir=str(tmp_path))
        recs = records(100)
        store.put((0, 0), recs)
        got = store.get((0, 0))
        assert (got == recs).all()
        assert store.spilled_bytes == 0
        store.close()

    def test_delete_and_missing(self, tmp_path):
        store = ShardStore(memory_budget_bytes=None, spill_dir=str(tmp_path))
        store.put((0, 0), records(10))
        store.delete((0, 0))
        assert store.get((0, 0)) is None
        assert store.n_records((0, 0)) == 0
        store.close()


class TestSpillPath:
    def test_budget_forces_spill_and_faults_back(self, tmp_path):
        recs = records(200)
        store = ShardStore(
            memory_budget_bytes=recs.nbytes // 2, spill_dir=str(tmp_path)
        )
        store.put((0, 0), recs)
        other = records(200, seed=1)
        store.put((1, 0), other)  # evicts the oldest past the budget
        assert store.spilled_bytes > 0
        assert (store.get((0, 0)) == recs).all()
        assert store.faulted_bytes > 0
        assert (store.get((1, 0)) == other).all()
        store.close()

    def test_close_removes_pagefile(self, tmp_path):
        store = ShardStore(memory_budget_bytes=16, spill_dir=str(tmp_path))
        store.put((0, 0), records(50))
        store.put((1, 0), records(50, seed=2))
        assert store.spill_segments > 0
        store.close()
        leftovers = [
            name for name in os.listdir(tmp_path) if "spill" in name
        ]
        assert leftovers == []

    def test_n_records(self, tmp_path):
        store = ShardStore(memory_budget_bytes=16, spill_dir=str(tmp_path))
        store.put((0, 7), records(33))
        assert store.n_records((0, 7)) == 33
        store.close()
