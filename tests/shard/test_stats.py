"""Property tests: merged shard statistics == the global scan.

The coordinator's split decisions must be bit-identical to the serial
kernels, so these tests treat :func:`best_continuous_split_dense` and
:func:`best_categorical_split_from_counts` as oracles and check the
histogram round trip against them on randomized inputs — including the
tid-range sharding the coordinator actually performs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.stats import (
    categorical_counts,
    categorical_split_from_counts,
    continuous_split_from_histogram,
    empty_histogram,
    merge_value_histograms,
    value_histogram,
)
from repro.sprint.gini import (
    best_categorical_split_from_counts,
    best_continuous_split_dense,
)

N_CLASSES = 3


def sorted_column(rng, n, distinct):
    values = rng.choice(
        rng.normal(size=distinct), size=n
    ).astype(np.float64)
    classes = rng.integers(0, N_CLASSES, size=n).astype(np.int32)
    order = np.argsort(values, kind="stable")
    return values[order], classes[order]


def shard_slices(values, classes, n_shards, rng):
    """Random contiguous tid-range shards, re-sorted per shard by value."""
    n = len(values)
    tids = rng.permutation(n)
    bounds = [s * n // n_shards for s in range(n_shards + 1)]
    out = []
    for s in range(n_shards):
        mask = (tids >= bounds[s]) & (tids < bounds[s + 1])
        v, c = values[mask], classes[mask]
        order = np.argsort(v, kind="stable")
        out.append((v[order], c[order]))
    return out


class TestContinuous:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_merged_split_matches_dense_oracle(self, seed, n_shards):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 400))
        values, classes = sorted_column(rng, n, distinct=int(rng.integers(1, 40)))
        oracle = best_continuous_split_dense(values, classes, N_CLASSES)

        hists = [
            value_histogram(v, c, N_CLASSES)
            for v, c in shard_slices(values, classes, n_shards, rng)
        ]
        merged = merge_value_histograms(hists, N_CLASSES)
        got = continuous_split_from_histogram(merged)

        if oracle is None:
            assert got is None
            return
        # Bit-identical: same position, same float threshold, same gini.
        assert got.threshold == oracle.threshold
        assert got.weighted_gini == oracle.weighted_gini
        assert got.n_left == oracle.n_left
        assert got.n_right == oracle.n_right

    def test_histogram_counts_are_exact(self):
        rng = np.random.default_rng(42)
        values, classes = sorted_column(rng, 200, distinct=10)
        hist = value_histogram(values, classes, N_CLASSES)
        assert hist.n_records == 200
        assert int(hist.counts.sum()) == 200
        assert (np.diff(hist.values) > 0).all()
        for j in range(N_CLASSES):
            assert int(hist.counts[:, j].sum()) == int((classes == j).sum())

    def test_empty_and_single_shard_merge(self):
        rng = np.random.default_rng(7)
        values, classes = sorted_column(rng, 50, distinct=5)
        hist = value_histogram(values, classes, N_CLASSES)
        merged = merge_value_histograms(
            [empty_histogram(N_CLASSES), hist, empty_histogram(N_CLASSES)],
            N_CLASSES,
        )
        assert (merged.values == hist.values).all()
        assert (merged.counts == hist.counts).all()

    def test_fewer_than_two_records_is_no_split(self):
        hist = value_histogram(
            np.array([1.5]), np.array([0], dtype=np.int32), N_CLASSES
        )
        assert continuous_split_from_histogram(hist) is None
        assert continuous_split_from_histogram(empty_histogram(N_CLASSES)) is None


class TestCategorical:
    @pytest.mark.parametrize("seed", range(6))
    def test_summed_counts_match_oracle(self, seed):
        rng = np.random.default_rng(seed + 100)
        n, cardinality = int(rng.integers(2, 300)), int(rng.integers(2, 7))
        values = rng.integers(0, cardinality, size=n).astype(np.int32)
        classes = rng.integers(0, N_CLASSES, size=n).astype(np.int32)

        full = categorical_counts(values, classes, cardinality, N_CLASSES)
        oracle = best_categorical_split_from_counts(full, n)

        parts = np.array_split(np.arange(n), 3)
        summed = sum(
            categorical_counts(values[p], classes[p], cardinality, N_CLASSES)
            for p in parts
        )
        assert (summed == full).all()
        got = categorical_split_from_counts(summed, max_exhaustive=10)

        if oracle is None:
            assert got is None
            return
        assert got.weighted_gini == oracle.weighted_gini
        assert got.subset == oracle.subset
