"""Leak regression: segments and spill files die with the build.

Shared-memory blocks and spill directories outlive the heap — a build
that raises (or whose worker is killed) must still leave /dev/shm and
the temp tree clean.  The autouse fixture in conftest asserts this
after *every* test; these tests force the failure paths.
"""

from __future__ import annotations

import os
import signal

import pytest

import repro.shard.coordinator as coordinator
from repro.core.builder import build_classifier
from repro.shard import ShardWorkerError
from repro.shard.pool import ShardPool
from repro.shard.shm import SharedArray, cleanup_all, live_segments, new_token
from repro.storage.temp import live_spill_dirs, release_spill_dir, spill_dir
from tests.shard.conftest import shm_leaks


class TestSuccessPath:
    def test_build_leaves_nothing(self, small_f2):
        build_classifier(small_f2, runtime="procs", shards=2)
        # conftest's autouse fixture re-checks; assert eagerly too.
        assert live_segments() == {}
        assert shm_leaks() == []

    def test_spill_build_leaves_nothing(self, small_f2):
        build_classifier(
            small_f2, runtime="procs", shards=2, memory_budget_bytes=4096
        )
        assert live_spill_dirs() == set()


class TestFailurePaths:
    def test_coordinator_crash_cleans_up(self, small_f2, monkeypatch):
        """An exception mid-build must not leak segments or spill dirs."""

        def boom(*args, **kwargs):
            raise RuntimeError("injected coordinator failure")

        monkeypatch.setattr(coordinator, "choose_winner_from", boom)
        with pytest.raises(RuntimeError, match="injected"):
            build_classifier(
                small_f2, runtime="procs", shards=2,
                memory_budget_bytes=4096,
            )
        assert live_segments() == {}
        assert live_spill_dirs() == set()
        assert shm_leaks() == []

    def test_killed_worker_cleans_up(self, small_f2):
        """SIGKILLing a worker fails the build but leaks nothing."""
        pool = ShardPool(2)
        try:
            os.kill(pool.pids()[1], signal.SIGKILL)
            with pytest.raises(ShardWorkerError):
                coordinator.build_sharded(small_f2, shards=2, pool=pool)
            assert live_segments() == {}
            assert shm_leaks() == []
        finally:
            pool.close()

    def test_spill_dir_context_manager_on_exception(self):
        with pytest.raises(ValueError):
            with spill_dir() as path:
                assert os.path.isdir(path)
                raise ValueError("boom")
        assert not os.path.exists(path)
        assert live_spill_dirs() == set()

    def test_release_is_idempotent(self):
        with spill_dir() as path:
            release_spill_dir(path)
        release_spill_dir(path)


class TestRegistry:
    def test_cleanup_all_unlinks_owned_segments(self):
        import numpy as np

        arr = SharedArray.create(
            np.arange(8, dtype=np.int64), new_token(), "a0"
        )
        name = arr.name
        assert live_segments() == {name: True}
        assert os.path.exists(f"/dev/shm/{name}")
        arr.array = None  # release the buffer pin, as an exiting owner would
        cleanup_all()
        assert live_segments() == {}
        assert not os.path.exists(f"/dev/shm/{name}")
        cleanup_all()  # idempotent
