"""Smoke tests: every shipped example runs and prints what it promises.

The examples double as documentation; a broken example is a broken
README.  Each runs in-process with a trimmed workload via environment
patching where the example allows, otherwise as-is (they are all sized
to finish in seconds).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = {
    "quickstart.py": ["training accuracy", "tree:"],
    "car_insurance.py": ["age < 27.5", "SELECT *", "high risk"],
    "out_of_core.py": ["identical to in-memory tree: True", "buffer pool"],
    "fraud_detection.py": ["MDL pruning removed", "confusion matrix"],
    "scheduler_timeline.py": ["BASIC", "MWK", "SUBTREE", "legend"],
    "smp_speedup_study.py": ["machine-a", "machine-b", "speedup"],
}

SLOW = {"fraud_detection.py", "smp_speedup_study.py", "scheduler_timeline.py"}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    if script in SLOW and os.environ.get("REPRO_SKIP_SLOW_EXAMPLES"):
        pytest.skip("slow example skipped by env")
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in CASES[script]:
        assert needle in proc.stdout, (
            f"{script}: expected {needle!r} in output"
        )
