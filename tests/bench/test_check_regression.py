"""Gate behaviour tests for benchmarks/check_regression.py."""

import copy
import json
import os
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
sys.path.insert(0, BENCH_DIR)
import check_regression  # noqa: E402

sys.path.pop(0)

REPO_ROOT = os.path.dirname(BENCH_DIR)


def baseline(name):
    with open(os.path.join(REPO_ROOT, name)) as handle:
        return json.load(handle)


def run(argv):
    return check_regression.main(argv)


class TestSelfCheck:
    def test_committed_baselines_pass(self, capsys):
        assert run([]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out
        for name in (
            "BENCH_kernels.json", "BENCH_wallclock.json",
            "BENCH_predict.json", "BENCH_build_native.json",
            "BENCH_shard.json",
        ):
            assert name in out

    def test_every_committed_schema_has_a_plan(self):
        import glob

        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
            schema = json.load(open(path)).get("schema")
            assert schema in check_regression.PLANS, (
                f"{os.path.basename(path)} declares {schema!r} with no "
                "regression plan — add one to check_regression.PLANS"
            )


class TestDegradations:
    def degrade(self, tmp_path, name, mutate):
        doc = copy.deepcopy(baseline(name))
        mutate(doc)
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(tmp_path)

    def test_halved_speedup_fails(self, tmp_path, capsys):
        current = self.degrade(
            tmp_path, "BENCH_kernels.json",
            lambda d: d["results"].__getitem__(0).update(
                speedup=d["results"][0]["speedup"] * 0.5
            ),
        )
        assert run(["--current", current]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "speedup" in out

    def test_small_wobble_passes(self, tmp_path):
        def mutate(doc):
            for row in doc["results"]:
                row["speedup"] *= 0.9  # inside the 25% band

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        assert run(["--current", current]) == 0

    def test_tolerance_flag_tightens_the_band(self, tmp_path):
        def mutate(doc):
            doc["results"][0]["speedup"] *= 0.9

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        assert run(["--current", current, "--tolerance", "0.05"]) == 1

    def test_slower_build_fails(self, tmp_path):
        def mutate(doc):
            doc["results"][0]["build_s"] *= 2.0

        current = self.degrade(tmp_path, "BENCH_wallclock.json", mutate)
        assert run(["--current", current]) == 1

    def test_correctness_flag_is_zero_tolerance(self, tmp_path, capsys):
        def mutate(doc):
            doc["summary"]["all_outputs_match_oracle"] = False

        current = self.degrade(tmp_path, "BENCH_predict.json", mutate)
        assert run(["--current", current]) == 1
        assert "zero tolerance" in capsys.readouterr().out

    def test_tree_match_regression_in_nested_table(self, tmp_path):
        def mutate(doc):
            doc["results"]["builds"][0]["tree_matches"] = False

        current = self.degrade(tmp_path, "BENCH_build_native.json", mutate)
        assert run(["--current", current]) == 1

    def test_shard_exact_tree_regression_fails(self, tmp_path):
        def mutate(doc):
            for row in doc["results"]:
                if row["merge"] == "exact":
                    row["tree_matches_serial"] = False
                    break

        current = self.degrade(tmp_path, "BENCH_shard.json", mutate)
        assert run(["--current", current]) == 1

    def test_shard_traffic_regression_fails(self, tmp_path):
        def mutate(doc):
            doc["results"][0]["bytes_total"] *= 3

        current = self.degrade(tmp_path, "BENCH_shard.json", mutate)
        assert run(["--current", current]) == 1

    def test_stable_only_ignores_timing_regressions(self, tmp_path):
        def mutate(doc):
            for row in doc["results"]:
                row["speedup"] = 0.01
                row["build_s"] *= 100

        current = self.degrade(tmp_path, "BENCH_shard.json", mutate)
        assert run(["--current", current, "--stable-only"]) == 0
        assert run(["--current", current]) == 1

    def test_stable_only_still_blocks_correctness(self, tmp_path, capsys):
        def mutate(doc):
            doc["summary"]["all_exact_trees_match"] = False

        current = self.degrade(tmp_path, "BENCH_shard.json", mutate)
        assert run(["--current", current, "--stable-only"]) == 1
        assert "zero tolerance" in capsys.readouterr().out

    def test_report_only_reports_but_exits_zero(self, tmp_path, capsys):
        def mutate(doc):
            doc["results"][0]["speedup"] = 0.01

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        assert run(["--current", current, "--report-only"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" in out and "report-only" in out

    def test_missing_rows_noted_not_failed(self, tmp_path, capsys):
        def mutate(doc):
            doc["results"] = doc["results"][:10]

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        assert run(["--current", current]) == 0
        assert "baseline row(s) missing" in capsys.readouterr().out

    def test_schema_mismatch_fails(self, tmp_path, capsys):
        def mutate(doc):
            doc["schema"] = "bench_predict/1"

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        assert run(["--current", current]) == 1
        assert "schema mismatch" in capsys.readouterr().out

    def test_single_file_current(self, tmp_path):
        def mutate(doc):
            doc["results"][0]["speedup"] *= 0.5

        current = self.degrade(tmp_path, "BENCH_kernels.json", mutate)
        path = os.path.join(current, "BENCH_kernels.json")
        assert run(["--current", path]) == 1


class TestCompare:
    def test_higher_better_band(self):
        assert check_regression._compare("higher", 2.0, 1.6, 0.25)[0]
        assert not check_regression._compare("higher", 2.0, 1.4, 0.25)[0]
        assert check_regression._compare("higher", 2.0, 3.0, 0.25)[0]

    def test_lower_better_band(self):
        assert check_regression._compare("lower", 1.0, 1.2, 0.25)[0]
        assert not check_regression._compare("lower", 1.0, 1.3, 0.25)[0]
        assert check_regression._compare("lower", 1.0, 0.5, 0.25)[0]

    def test_bool_only_fails_true_to_false(self):
        assert not check_regression._compare("bool", True, False, 0.25)[0]
        assert check_regression._compare("bool", True, True, 0.25)[0]
        assert check_regression._compare("bool", False, True, 0.25)[0]
        assert check_regression._compare("bool", False, False, 0.25)[0]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            check_regression._compare("sideways", 1.0, 1.0, 0.25)
