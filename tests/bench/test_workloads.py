"""Unit tests for benchmark workloads."""

import pytest

from repro.bench.workloads import (
    DEFAULT_BENCH_RECORDS,
    PAPER_GRID,
    bench_records,
    paper_dataset,
)


class TestBenchRecords:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RECORDS", raising=False)
        assert bench_records() == DEFAULT_BENCH_RECORDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RECORDS", "25000")
        assert bench_records() == 25000

    def test_too_small_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RECORDS", "10")
        with pytest.raises(ValueError, match="too small"):
            bench_records()


class TestPaperDataset:
    def test_grid(self):
        assert PAPER_GRID == ((2, 32), (7, 32), (2, 64), (7, 64))

    def test_naming(self):
        data = paper_dataset(2, 32, 1000)
        assert data.name == "F2-A32-D1K"
        assert data.n_attributes == 32

    def test_cached(self):
        a = paper_dataset(2, 32, 1000)
        b = paper_dataset(2, 32, 1000)
        assert a is b

    def test_default_size(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_RECORDS", raising=False)
        data = paper_dataset(7, 32)
        assert data.n_records == DEFAULT_BENCH_RECORDS
