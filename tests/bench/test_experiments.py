"""Fast structural smoke tests for the paper-experiment entry points.

The benchmarks run these at full scale; here a few hundred records
verify the plumbing (dataset grid, curve structure, caching) quickly.
"""

import pytest

from repro.bench import experiments


@pytest.fixture(autouse=True, scope="module")
def clear_caches():
    experiments._figure.cache_clear()
    yield
    experiments._figure.cache_clear()


TINY = 400


class TestFigures:
    def test_figure8_structure(self):
        curves = experiments.figure8(TINY)
        assert set(curves) == {"F2", "F7"}
        for curve in curves.values():
            assert curve.machine_name == "machine-a"
            algos = {p.algorithm for p in curve.points}
            assert algos == {"mwk", "subtree"}
            procs = {p.n_procs for p in curve.points}
            assert procs == {1, 2, 4}

    def test_figure10_uses_machine_b_to_8(self):
        curves = experiments.figure10(TINY)
        curve = curves["F2"]
        assert curve.machine_name == "machine-b"
        assert {p.n_procs for p in curve.points} == {1, 2, 4, 8}

    def test_caching_returns_same_object(self):
        a = experiments.figure8(TINY)
        b = experiments.figure8(TINY)
        assert a is b

    def test_speedups_at_baseline_are_one(self):
        curves = experiments.figure10(TINY)  # cached from the earlier test
        for curve in curves.values():
            for algorithm in ("mwk", "subtree"):
                assert curve.of(algorithm, 1).build_speedup == 1.0


class TestTable1:
    def test_four_rows(self):
        rows = experiments.table1(TINY)
        names = [r.dataset_name for r in rows]
        assert names == [
            "F2-A32-D400", "F7-A32-D400", "F2-A64-D400", "F7-A64-D400",
        ]
        for row in rows:
            assert row.total_time > 0
            assert 0 <= row.setup_pct <= 100
