"""Unit tests for the speedup/Table-1 harness and reporting."""

import os

import pytest

from repro.bench.harness import run_speedup, run_table1_row
from repro.bench.reporting import format_table, save_result, speedup_table
from repro.smp.machine import machine_a, machine_b


@pytest.fixture(scope="module")
def curve(small_f2):
    return run_speedup(
        small_f2, machine_b, algorithms=("mwk",), proc_counts=(1, 2)
    )


# module-scoped dataset for the expensive fixtures above
@pytest.fixture(scope="module")
def small_f2():
    from repro.data.generator import DatasetSpec, generate_dataset

    return generate_dataset(
        DatasetSpec(function=2, n_attributes=9, n_records=600, seed=3)
    )


class TestRunSpeedup:
    def test_points_per_combination(self, curve):
        assert len(curve.points) == 2

    def test_baseline_speedup_is_one(self, curve):
        p1 = curve.of("mwk", 1)
        assert p1.build_speedup == pytest.approx(1.0)
        assert p1.total_speedup == pytest.approx(1.0)

    def test_speedup_computed_vs_p1(self, curve):
        p1, p2 = curve.of("mwk", 1), curve.of("mwk", 2)
        assert p2.build_speedup == pytest.approx(p1.build_time / p2.build_time)

    def test_missing_point_raises(self, curve):
        with pytest.raises(KeyError):
            curve.of("mwk", 16)

    def test_best_speedup(self, curve):
        assert curve.best_speedup("mwk") >= 1.0

    def test_tree_shape_recorded(self, curve):
        assert curve.of("mwk", 1).tree_levels > 1

    def test_metrics_snapshot_attached(self, curve):
        for point in curve.points:
            assert point.metrics is not None
            assert set(point.metrics) == {
                "busy", "io", "lock_wait", "barrier_wait", "condvar_wait"
            }
            assert point.metrics["busy"] > 0
        # More processors, more synchronization loss.
        p1, p2 = curve.of("mwk", 1), curve.of("mwk", 2)
        assert p2.metrics["barrier_wait"] >= p1.metrics["barrier_wait"]


class TestTable1Row:
    def test_row_fields(self, small_f2):
        row = run_table1_row(small_f2, machine_a(1))
        assert row.dataset_name == small_f2.name
        assert row.db_size_mb > 0
        assert row.tree_levels > 1
        assert row.max_leaves_per_level >= 1
        assert 0 < row.setup_pct < 100
        assert 0 < row.sort_pct < 100
        assert row.total_time > row.setup_time + row.sort_time


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (30, 4.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "2.50" in lines[2] and "4.25" in lines[3]

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a",), [(1, 2)])

    def test_save_result(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.delenv("REPRO_BENCH_RESULTS", raising=False)
        monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
        path = save_result("unit", "hello")
        assert os.path.exists(path)
        assert open(path).read() == "hello\n"

    def test_speedup_table_renders(self, curve):
        text = speedup_table(curve)
        assert "speedup (build)" in text
        assert "mwk" in text

    def test_speedup_chart_renders(self, curve):
        from repro.bench.reporting import speedup_chart

        text = speedup_chart(curve)
        assert "build speedup" in text
        assert "M=mwk" in text
        assert ".=ideal" in text
        assert "P=1" in text and "P=2" in text

    def test_speedup_chart_marks_every_point(self, curve):
        from repro.bench.reporting import speedup_chart

        text = speedup_chart(curve)
        # Two measured points -> at least two 'M' marks on the canvas.
        canvas = "\n".join(
            line for line in text.splitlines() if line.strip().endswith("")
        )
        assert canvas.count("M") >= 3  # 2 points + legend
