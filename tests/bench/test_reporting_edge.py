"""Edge cases for the reporting helpers."""

import pytest

from repro.bench.harness import SpeedupCurve, SpeedupPoint
from repro.bench.reporting import format_table, speedup_chart, speedup_table


def one_point_curve():
    curve = SpeedupCurve("F2-A9-D1K", "machine-b")
    curve.points.append(
        SpeedupPoint("mwk", 1, build_time=2.0, total_time=3.0)
    )
    return curve


class TestSpeedupChartEdges:
    def test_single_point(self):
        text = speedup_chart(one_point_curve())
        assert "M=mwk" in text
        assert "P=1" in text

    def test_missing_grid_points_tolerated(self):
        curve = SpeedupCurve("x", "machine-a")
        curve.points.append(SpeedupPoint("mwk", 1, 4.0, 5.0))
        curve.points.append(SpeedupPoint("mwk", 4, 1.0, 2.0, 4.0, 2.5))
        curve.points.append(SpeedupPoint("subtree", 1, 4.0, 5.0))
        # subtree has no P=4 point; chart must still render.
        text = speedup_chart(curve)
        assert "S=subtree" in text

    def test_table_single_point(self):
        text = speedup_table(one_point_curve())
        assert "F2-A9-D1K on machine-b" in text


class TestFormatTableEdges:
    def test_empty_rows(self):
        text = format_table(("a", "b"), [])
        assert text.splitlines()[0].strip().startswith("a")
        assert len(text.splitlines()) == 2  # header + rule only

    def test_mixed_types(self):
        text = format_table(("x",), [(None,), (1.5,), ("s",)])
        assert "None" in text and "1.50" in text and "s" in text
