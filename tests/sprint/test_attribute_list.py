"""Unit tests for attribute-list construction (the setup phase)."""

import numpy as np
import pytest

from repro.data.schema import Attribute, AttributeKind
from repro.smp.machine import machine_a
from repro.sprint.attribute_list import (
    build_attribute_list,
    build_attribute_lists,
    setup_costs,
)
from repro.sprint.records import CATEGORICAL_RECORD, CONTINUOUS_RECORD


class TestBuildOne:
    def test_continuous_sorted_by_value(self):
        attr = Attribute("age", AttributeKind.CONTINUOUS)
        values = np.array([30.0, 10.0, 20.0])
        labels = np.array([0, 1, 0], dtype=np.int32)
        alist = build_attribute_list(attr, values, labels)
        np.testing.assert_array_equal(alist.records["value"], [10.0, 20.0, 30.0])
        np.testing.assert_array_equal(alist.records["tid"], [1, 2, 0])
        np.testing.assert_array_equal(alist.records["cls"], [1, 0, 0])
        assert alist.is_sorted()

    def test_tid_tiebreak_on_equal_values(self):
        attr = Attribute("x", AttributeKind.CONTINUOUS)
        values = np.array([5.0, 5.0, 5.0])
        labels = np.zeros(3, dtype=np.int32)
        alist = build_attribute_list(attr, values, labels)
        np.testing.assert_array_equal(alist.records["tid"], [0, 1, 2])

    def test_categorical_keeps_tuple_order(self):
        attr = Attribute("car", AttributeKind.CATEGORICAL, 3)
        values = np.array([2, 0, 1], dtype=np.int64)
        labels = np.array([0, 1, 0], dtype=np.int32)
        alist = build_attribute_list(attr, values, labels)
        np.testing.assert_array_equal(alist.records["value"], [2, 0, 1])
        np.testing.assert_array_equal(alist.records["tid"], [0, 1, 2])

    def test_dtypes(self):
        cont = build_attribute_list(
            Attribute("a", AttributeKind.CONTINUOUS),
            np.array([1.0]),
            np.array([0], dtype=np.int32),
        )
        cat = build_attribute_list(
            Attribute("b", AttributeKind.CATEGORICAL, 2),
            np.array([1], dtype=np.int64),
            np.array([0], dtype=np.int32),
        )
        assert cont.records.dtype == CONTINUOUS_RECORD
        assert cat.records.dtype == CATEGORICAL_RECORD


class TestBuildAll:
    def test_one_list_per_attribute(self, car_insurance):
        lists = build_attribute_lists(car_insurance)
        assert len(lists) == 2
        assert lists[0].attribute.name == "age"
        assert lists[0].is_sorted()
        assert lists[1].attribute.name == "car_type"

    def test_every_list_covers_all_tuples(self, small_f2):
        lists = build_attribute_lists(small_f2)
        for alist in lists:
            assert alist.n_records == small_f2.n_records
            assert sorted(alist.records["tid"]) == list(
                range(small_f2.n_records)
            )

    def test_class_labels_travel_with_records(self, car_insurance):
        lists = build_attribute_lists(car_insurance)
        for alist in lists:
            for rec in alist.records:
                assert rec["cls"] == car_insurance.labels[rec["tid"]]


class TestSetupCosts:
    def test_breakdown_keys(self, small_f2):
        costs = setup_costs(small_f2, machine_a(1))
        assert set(costs) == {"setup", "sort", "write_bytes"}
        assert costs["setup"] > 0 and costs["sort"] > 0

    def test_sort_charged_only_for_continuous(self, car_insurance):
        m = machine_a(1)
        costs = setup_costs(car_insurance, m)
        n = car_insurance.n_records
        expected_sort = m.cpu_sort_record * n * np.log2(n)
        assert costs["sort"] == pytest.approx(expected_sort)
