"""Unit tests for the physical-file layout rules."""

import pytest

from repro.core.tree import Node
from repro.sprint.attribute_files import FileLayout, relabel_slots


class TestFileLayout:
    def test_basic_has_four_files_per_attribute(self):
        assert FileLayout(slots=1).files_per_attribute == 4

    def test_windowed_has_4k_files(self):
        """FWK/MWK need 2K current + 2K alternate files (paper §3.2.2)."""
        assert FileLayout(slots=4).files_per_attribute == 16

    def test_slots_validated(self):
        with pytest.raises(ValueError, match="slots"):
            FileLayout(slots=0)

    def test_physical_name_alternates_generations(self):
        layout = FileLayout(slots=1)
        even = layout.physical_name(0, 0, level=2)
        odd = layout.physical_name(0, 0, level=3)
        assert even != odd
        assert layout.physical_name(0, 0, level=4) == even

    def test_left_right_files_distinct(self):
        layout = FileLayout(slots=1)
        left = layout.physical_name(0, 0, level=0)  # slot 0 -> left file
        right = layout.physical_name(0, 1, level=0)  # slot 1 -> right file
        assert left != right
        # slot 2 cycles back to the left file.
        assert layout.physical_name(0, 2, level=0) == left

    def test_window_positions_distinct(self):
        layout = FileLayout(slots=3)
        names = {layout.physical_name(0, s, 0) for s in range(3)}
        assert len(names) == 3

    def test_attributes_never_share_files(self):
        layout = FileLayout(slots=2)
        a = {layout.physical_name(0, s, 0) for s in range(8)}
        b = {layout.physical_name(1, s, 0) for s in range(8)}
        assert a.isdisjoint(b)

    def test_group_private_files(self):
        """SUBTREE groups have private file sets (paper §3.3)."""
        shared = FileLayout(slots=1)
        grouped = FileLayout(slots=1, group=3)
        assert shared.physical_name(0, 0, 0) != grouped.physical_name(0, 0, 0)

    def test_segment_key_unique_per_node(self):
        layout = FileLayout()
        assert layout.segment_key(0, 1) != layout.segment_key(0, 2)
        assert layout.segment_key(0, 1) != layout.segment_key(1, 1)


class TestRelabel:
    def test_consecutive_slots(self):
        import numpy as np

        children = [Node(i, 1, np.array([1, 0])) for i in (5, 9, 12)]
        mapping = relabel_slots(children)
        assert mapping == {5: 0, 9: 1, 12: 2}

    def test_empty(self):
        assert relabel_slots([]) == {}
