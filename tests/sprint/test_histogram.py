"""Histogram tests, including the scan-vs-vectorized cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sprint.gini import best_continuous_split
from repro.sprint.histogram import (
    ClassHistogram,
    CountMatrix,
    scan_continuous_split,
)


class TestClassHistogram:
    def test_initial_state(self):
        h = ClassHistogram(2, np.array([3, 4]))
        assert h.n_below == 0 and h.n_above == 7

    def test_advance_moves_one_record(self):
        h = ClassHistogram(2, np.array([3, 4]))
        h.advance(1)
        np.testing.assert_array_equal(h.below, [0, 1])
        np.testing.assert_array_equal(h.above, [3, 3])

    def test_advance_exhausted_class_rejected(self):
        h = ClassHistogram(2, np.array([1, 0]))
        with pytest.raises(ValueError, match="no remaining"):
            h.advance(1)

    def test_split_gini_balanced(self):
        h = ClassHistogram(2, np.array([2, 2]))
        h.advance(0)
        h.advance(0)
        # below = [2,0] pure, above = [0,2] pure -> weighted gini 0.
        assert h.split_gini() == pytest.approx(0.0)

    def test_counts_length_validated(self):
        with pytest.raises(ValueError, match="length"):
            ClassHistogram(3, np.array([1, 2]))


class TestCountMatrix:
    def test_from_records(self):
        values = np.array([0, 1, 1, 2], dtype=np.int64)
        classes = np.array([0, 0, 1, 1], dtype=np.int32)
        m = CountMatrix.from_records(values, classes, 3, 2)
        np.testing.assert_array_equal(
            m.counts, [[1, 0], [1, 1], [0, 1]]
        )

    def test_present_values(self):
        m = CountMatrix(4, 2)
        m.add(0, 1)
        m.add(3, 0)
        np.testing.assert_array_equal(m.present_values(), [0, 3])

    def test_subset_gini_perfect(self):
        values = np.array([0, 0, 1, 1], dtype=np.int64)
        classes = np.array([0, 0, 1, 1], dtype=np.int32)
        m = CountMatrix.from_records(values, classes, 2, 2)
        assert m.subset_gini(np.array([0])) == pytest.approx(0.0)

    def test_total(self):
        m = CountMatrix(2, 2)
        m.add(0, 0)
        m.add(1, 1)
        assert m.total == 2


class TestScanReference:
    def test_matches_hand_example(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        classes = np.array([0, 0, 1, 1], dtype=np.int32)
        cand = scan_continuous_split(values, classes, 2)
        assert cand.threshold == pytest.approx(2.5)
        assert cand.weighted_gini == pytest.approx(0.0)

    def test_no_split_on_constant(self):
        values = np.ones(4)
        classes = np.array([0, 1, 0, 1], dtype=np.int32)
        assert scan_continuous_split(values, classes, 2) is None


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(2, 80),
    n_distinct=st.integers(1, 10),
    seed=st.integers(0, 10_000),
)
def test_scan_equals_vectorized(n, n_distinct, seed):
    """The O(n) scan reference and the vectorized production path agree
    on gini, threshold and partition sizes for arbitrary sorted inputs."""
    rng = np.random.default_rng(seed)
    values = np.sort(rng.integers(0, n_distinct, n).astype(np.float64))
    classes = rng.integers(0, 3, n).astype(np.int32)
    reference = scan_continuous_split(values, classes, 3)
    vectorized = best_continuous_split(values, classes, 3)
    if reference is None:
        assert vectorized is None
    else:
        assert vectorized.weighted_gini == pytest.approx(
            reference.weighted_gini
        )
        # The two formulas associate floats differently, so exact ties
        # between split points may break either way; when the chosen
        # points differ, the approx-equal impurity above already proves
        # both are optimal.  Everything else must match exactly.
        if vectorized.threshold == pytest.approx(reference.threshold):
            assert vectorized.n_left == reference.n_left
        assert vectorized.n_left + vectorized.n_right == n
        assert vectorized.work_points == reference.work_points
