"""Unit and property tests for attribute-list splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sprint.gini import SplitCandidate
from repro.sprint.probe import BitProbe
from repro.sprint.records import CATEGORICAL_RECORD, CONTINUOUS_RECORD
from repro.sprint.splitter import (
    split_records,
    split_winner_records,
    winner_left_mask,
)


def continuous_records(values, classes=None, tids=None):
    n = len(values)
    out = np.zeros(n, dtype=CONTINUOUS_RECORD)
    out["value"] = values
    out["cls"] = classes if classes is not None else np.zeros(n)
    out["tid"] = tids if tids is not None else np.arange(n)
    return out


class TestWinnerSplit:
    def test_continuous_threshold(self):
        recs = continuous_records([1.0, 2.0, 3.0, 4.0])
        cand = SplitCandidate(0.0, threshold=2.5, subset=None,
                              n_left=2, n_right=2, work_points=4)
        left, right = split_winner_records(recs, cand)
        np.testing.assert_array_equal(left["value"], [1.0, 2.0])
        np.testing.assert_array_equal(right["value"], [3.0, 4.0])

    def test_boundary_goes_right(self):
        """The test is value < threshold: equality routes right."""
        recs = continuous_records([2.5])
        cand = SplitCandidate(0.0, threshold=2.5, subset=None,
                              n_left=1, n_right=1, work_points=1)
        left, right = split_winner_records(recs, cand)
        assert len(left) == 0 and len(right) == 1

    def test_categorical_subset(self):
        recs = np.zeros(4, dtype=CATEGORICAL_RECORD)
        recs["value"] = [0, 1, 2, 1]
        recs["tid"] = np.arange(4)
        cand = SplitCandidate(0.0, threshold=None, subset=frozenset({1}),
                              n_left=2, n_right=2, work_points=1)
        left, right = split_winner_records(recs, cand)
        np.testing.assert_array_equal(left["tid"], [1, 3])
        np.testing.assert_array_equal(right["tid"], [0, 2])


class TestProbeSplit:
    def test_split_by_probe(self):
        recs = continuous_records([5.0, 1.0, 3.0], tids=[10, 11, 12])
        probe = BitProbe(20)
        probe.mark_left(np.array([11]))
        left, right = split_records(recs, probe)
        np.testing.assert_array_equal(left["tid"], [11])
        np.testing.assert_array_equal(right["tid"], [10, 12])

    def test_order_preserved(self):
        """Splits keep relative record order, so continuous lists stay
        sorted without re-sorting (paper §2.1)."""
        values = np.sort(np.random.default_rng(1).random(100))
        recs = continuous_records(values)
        probe = BitProbe(100)
        probe.mark_left(np.arange(0, 100, 3))
        left, right = split_records(recs, probe)
        assert np.all(np.diff(left["value"]) >= 0)
        assert np.all(np.diff(right["value"]) >= 0)


@settings(max_examples=50, deadline=None)
@given(n=st.integers(0, 120), seed=st.integers(0, 10_000))
def test_split_partition_invariants(n, seed):
    """Every record lands in exactly one side; order is preserved."""
    rng = np.random.default_rng(seed)
    values = np.sort(rng.random(n))
    recs = continuous_records(values)
    probe = BitProbe(max(n, 1))
    left_tids = np.flatnonzero(rng.random(n) < 0.5)
    probe.mark_left(left_tids)
    left, right = split_records(recs, probe)
    assert len(left) + len(right) == n
    assert set(left["tid"]) | set(right["tid"]) == set(range(n))
    assert set(left["tid"]) & set(right["tid"]) == set()
    if len(left) > 1:
        assert np.all(np.diff(left["value"]) >= 0)
    if len(right) > 1:
        assert np.all(np.diff(right["value"]) >= 0)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 100),
    threshold=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)
def test_winner_mask_matches_direct_test(n, threshold, seed):
    rng = np.random.default_rng(seed)
    recs = continuous_records(rng.random(n))
    cand = SplitCandidate(0.0, threshold=threshold, subset=None,
                          n_left=1, n_right=1, work_points=1)
    mask = winner_left_mask(recs, cand)
    np.testing.assert_array_equal(mask, recs["value"] < threshold)
