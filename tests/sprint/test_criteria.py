"""Tests for the impurity criteria (gini and entropy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.metrics import accuracy
from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.sprint.criteria import (
    entropy_impurity,
    get_criterion,
    gini_impurity,
    weighted_impurity,
)
from repro.sprint.gini import best_continuous_split, gini_from_counts


class TestImpurityFunctions:
    def test_gini_matches_scalar(self):
        counts = np.array([[3, 7], [5, 5], [10, 0]])
        out = gini_impurity(counts)
        for row, expected in zip(counts, out):
            assert gini_from_counts(row) == pytest.approx(expected)

    def test_entropy_known_values(self):
        counts = np.array([[5, 5], [10, 0], [0, 0]])
        out = entropy_impurity(counts)
        assert out[0] == pytest.approx(1.0)  # 50/50 = 1 bit
        assert out[1] == 0.0  # pure
        assert out[2] == 0.0  # empty

    def test_entropy_three_class_uniform(self):
        out = entropy_impurity(np.array([[4, 4, 4]]))
        assert out[0] == pytest.approx(np.log2(3))

    def test_unknown_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            get_criterion("chi2")

    def test_weighted_impurity_pure_split(self):
        left = np.array([[5, 0]])
        right = np.array([[0, 5]])
        for name in ("gini", "entropy"):
            out = weighted_impurity(left, right, get_criterion(name))
            assert out[0] == pytest.approx(0.0)


class TestEntropySplits:
    def test_perfect_split_found(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        classes = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        cand = best_continuous_split(values, classes, 2, criterion="entropy")
        assert cand.threshold == pytest.approx(6.5)
        assert cand.weighted_gini == pytest.approx(0.0)

    def test_entropy_tree_builds_and_classifies(self, small_f2):
        result = build_classifier(
            small_f2, params=BuildParams(criterion="entropy")
        )
        assert accuracy(result.tree, small_f2) > 0.99

    def test_entropy_deterministic_across_schemes(self, small_f7):
        params = BuildParams(criterion="entropy")
        reference = build_classifier(
            small_f7, algorithm="serial", params=params
        ).tree
        for algorithm in ("mwk", "subtree"):
            result = build_classifier(
                small_f7, algorithm=algorithm, n_procs=3, params=params
            )
            assert result.tree.signature() == reference.signature()

    def test_sliq_parity_with_entropy(self, small_f2):
        from repro.sliq import build_sliq

        params = BuildParams(criterion="entropy")
        sprint = build_classifier(
            small_f2, algorithm="serial", params=params
        ).tree
        sliq = build_sliq(small_f2, params)
        assert sliq.signature() == sprint.signature()

    def test_invalid_criterion_rejected(self):
        with pytest.raises(ValueError, match="criterion"):
            BuildParams(criterion="chi2")


@settings(max_examples=50, deadline=None)
@given(
    counts=st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 50)),
        min_size=1,
        max_size=20,
    )
)
def test_impurity_bounds(counts):
    """0 <= gini <= 0.5 and 0 <= entropy <= 1 for binary counts; both
    are zero exactly on pure (or empty) rows."""
    matrix = np.array(counts)
    g = gini_impurity(matrix)
    h = entropy_impurity(matrix)
    assert np.all((g >= 0) & (g <= 0.5 + 1e-12))
    assert np.all((h >= 0) & (h <= 1.0 + 1e-12))
    pure = (matrix.min(axis=1) == 0)
    np.testing.assert_array_almost_equal(g[pure], 0.0)
    np.testing.assert_array_almost_equal(h[pure], 0.0)
