"""In-kernel SMP: the worker pool and the threaded training kernels.

The pool (:mod:`repro._native.pool`) promises *bit-identical* results at
any lane count — parallelism must change wall-clock time and nothing
else.  These tests pin that promise at the kernel layer: every threaded
scan/count/partition is compared against its single-threaded native
spelling and its numpy twin across lane counts straddling the blocking
grain, including the awkward shapes (one huge segment, tie-heavy runs,
inputs far below the grain).

Pool mechanics — block planning, override precedence, the stats
counters telemetry folds in, and GIL release while helpers run — are
covered here too.  Everything skips cleanly when no C compiler (or no
pthreads pool) is available.
"""

import threading
import time

import numpy as np
import pytest

from repro._native import cc, pool
from repro.sprint import kernels as K
from repro.sprint import native
from repro.sprint.records import CONTINUOUS_RECORD

needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason="no C compiler / native kernels unavailable",
)


def _threaded_kernels_available() -> bool:
    nat = native.kernels()
    return nat is not None and nat._continuous_mt is not None


needs_pool = pytest.mark.skipif(
    not _threaded_kernels_available(),
    reason="threaded native kernels unavailable (no pool)",
)

#: Lane counts exercised by every differential test: serial, the
#: smallest parallel pool, a typical one, and more lanes than blocks.
LANES = (1, 2, 4, 7)


def _continuous_case(name, rng):
    """(values, classes, offsets, n_classes) for one named shape."""
    if name == "one-huge-segment":
        # Forces the within-segment decomposition at >=2 lanes.
        n, ncls = 200_000, 3
        values = np.sort(rng.random(n))
        segs = [n]
    elif name == "few-big-segments":
        n, ncls = 70_000, 5
        segs = [n // 3, n // 3, n - 2 * (n // 3)]
        values = np.concatenate([np.sort(rng.random(m)) for m in segs])
    elif name == "tie-heavy":
        # Long equal-value runs: block boundaries must align to run
        # starts or the split-point bookkeeping diverges.
        n, ncls = 120_000, 2
        values = np.sort(rng.integers(0, 40, n).astype(np.float64))
        segs = [n]
    elif name == "many-small-segments":
        # More segments than lanes: the per-segment decomposition.
        ncls = 4
        segs = [int(m) for m in rng.integers(500, 4_000, size=64)]
        n = sum(segs)
        values = np.concatenate([np.sort(rng.random(m)) for m in segs])
    else:  # "tiny": far below every grain — must stay correct inline.
        ncls = 2
        segs = [3, 0, 2]
        n = sum(segs)
        values = np.concatenate([np.sort(rng.random(m)) for m in segs])
    classes = rng.integers(0, ncls, n).astype(np.int32)
    offsets = np.concatenate([[0], np.cumsum(segs)]).astype(np.int64)
    return values, classes, offsets, ncls


def _identical_candidates(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if x is None or y is None:
            assert x is None and y is None
            continue
        assert x.weighted_gini == y.weighted_gini  # bit-identical
        assert x.threshold == y.threshold
        assert (x.n_left, x.n_right) == (y.n_left, y.n_right)


@needs_pool
class TestContinuousThreadIdentity:
    @pytest.mark.parametrize(
        "shape",
        [
            "one-huge-segment",
            "few-big-segments",
            "tie-heavy",
            "many-small-segments",
            "tiny",
        ],
    )
    def test_matches_numpy_at_every_lane_count(self, shape):
        rng = np.random.default_rng(hash(shape) % (1 << 32))
        values, classes, offsets, ncls = _continuous_case(shape, rng)
        with cc.native_override("off"):
            ref = K.segmented_continuous_splits(
                values, classes, offsets, ncls
            )
        for lanes in LANES:
            with cc.native_override("on"), pool.thread_override(lanes):
                got = K.segmented_continuous_splits(
                    values, classes, offsets, ncls
                )
            _identical_candidates(ref, got)


@needs_pool
class TestCategoricalThreadIdentity:
    @pytest.mark.parametrize(
        "segs",
        [
            [150_000],  # one big segment: per-block partial tensors
            [40_000, 40_000, 40_000],  # few big segments
            [700] * 64,  # many segments: disjoint slices
            [5, 0, 3],  # below the grain
        ],
    )
    def test_count_tensor_identical(self, segs):
        rng = np.random.default_rng(sum(segs) + len(segs))
        card, ncls = 6, 3
        n = sum(segs)
        values = rng.integers(0, card, n).astype(np.int64)
        classes = rng.integers(0, ncls, n).astype(np.int32)
        offsets = np.concatenate([[0], np.cumsum(segs)]).astype(np.int64)
        with cc.native_override("off"):
            ref = K.segmented_categorical_counts(
                values, classes, offsets, card, ncls
            )
        for lanes in LANES:
            with cc.native_override("on"), pool.thread_override(lanes):
                got = K.segmented_categorical_counts(
                    values, classes, offsets, card, ncls
                )
            np.testing.assert_array_equal(ref, got)


@needs_pool
class TestPartitionThreadIdentity:
    @pytest.mark.parametrize("n", [300_000, 16_385, 100, 1, 0])
    def test_stable_partition_identical(self, n):
        rng = np.random.default_rng(n + 1)
        rec = np.zeros(n, dtype=CONTINUOUS_RECORD)
        rec["value"] = rng.random(n)
        rec["cls"] = rng.integers(0, 3, n)
        rec["tid"] = rng.permutation(n)
        mask = rng.random(n) < 0.37
        with cc.native_override("off"):
            l_ref, r_ref = K.partition_stable(rec, mask)
        for lanes in LANES:
            with cc.native_override("on"), pool.thread_override(lanes):
                left, right = K.partition_stable(rec, mask)
            np.testing.assert_array_equal(l_ref, left)
            np.testing.assert_array_equal(r_ref, right)

    def test_all_one_side(self):
        rec = np.zeros(100_000, dtype=CONTINUOUS_RECORD)
        rec["tid"] = np.arange(len(rec))
        for fill in (True, False):
            mask = np.full(len(rec), fill)
            with cc.native_override("on"), pool.thread_override(4):
                left, right = K.partition_stable(rec, mask)
            assert len(left) == (len(rec) if fill else 0)
            side = left if fill else right
            np.testing.assert_array_equal(side["tid"], rec["tid"])


@needs_pool
class TestPoolMechanics:
    def test_blocks_planner(self):
        lib = pool.load()
        with pool.thread_override(4):
            pool.sync()
            assert lib.repro_pool_blocks(0, 8192) == 0
            assert lib.repro_pool_blocks(100, 8192) == 1
            # ceil(100000/8192) = 13, capped at 4 lanes.
            assert lib.repro_pool_blocks(100_000, 8192) == 4
            # grain dominates when rows are scarce.
            assert lib.repro_pool_blocks(16_384, 8192) == 2
        with pool.thread_override(1):
            pool.sync()
            assert lib.repro_pool_blocks(1 << 20, 1) == 1

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "2")
        assert pool.configured_threads() == 2
        with pool.thread_override(5):
            assert pool.configured_threads() == 5
            assert pool.sync() == 5
        assert pool.configured_threads() == 2
        assert pool.sync() == 2

    def test_sync_reconfigures_c_side(self):
        with pool.thread_override(3):
            assert pool.sync() == 3
            assert pool.stats()["threads"] == 3
        with pool.thread_override(1):
            assert pool.sync() == 1
            assert pool.stats()["threads"] == 1

    def test_stats_snapshot_shape(self):
        snap = pool.stats()
        assert set(snap) == {"loaded", "threads", "spawned", "tasks_total"}
        assert snap["loaded"] == 1  # needs_pool already loaded it

    def test_regions_counted(self):
        rng = np.random.default_rng(11)
        values = np.sort(rng.random(100_000))
        classes = rng.integers(0, 3, len(values)).astype(np.int32)
        offsets = np.array([0, len(values)], dtype=np.int64)
        before = pool.stats()["tasks_total"]
        with cc.native_override("on"), pool.thread_override(2):
            K.segmented_continuous_splits(values, classes, offsets, 3)
        assert pool.stats()["tasks_total"] > before

    def test_helpers_spawn_lazily_and_persist(self):
        rng = np.random.default_rng(12)
        values = np.sort(rng.random(200_000))
        classes = rng.integers(0, 2, len(values)).astype(np.int32)
        offsets = np.array([0, len(values)], dtype=np.int64)
        with cc.native_override("on"), pool.thread_override(2):
            K.segmented_continuous_splits(values, classes, offsets, 2)
            # 2 lanes = caller + >=1 persistent helper.
            assert pool.stats()["spawned"] >= 1

    def test_concurrent_python_callers_serialize_safely(self):
        # Two Python threads hitting parallel kernels at once must queue
        # on the single job slot, not corrupt each other's results.
        rng = np.random.default_rng(13)
        values = np.sort(rng.random(150_000))
        classes = rng.integers(0, 4, len(values)).astype(np.int32)
        offsets = np.array([0, len(values)], dtype=np.int64)
        with cc.native_override("off"):
            ref = K.segmented_continuous_splits(values, classes, offsets, 4)
        results = [None] * 4
        errors = []

        def run(i):
            try:
                with cc.native_override("on"):
                    results[i] = K.segmented_continuous_splits(
                        values, classes, offsets, 4
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with pool.thread_override(2):
            threads = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(results))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        for got in results:
            _identical_candidates(ref, got)


@needs_pool
class TestGilOverlap:
    def test_main_thread_ticks_during_threaded_scan(self):
        # The parallel region must run with the GIL dropped: while the
        # pool chews a multi-block scan, the interpreter keeps
        # scheduling this thread.  Works even on one core — a
        # GIL-holding kernel would freeze the tick loop for the whole
        # call.
        n, ncls = 1 << 22, 64
        values = np.arange(n, dtype=np.float64)
        classes = (np.arange(n, dtype=np.int64) % ncls).astype(np.int32)
        offsets = np.array([0, n], dtype=np.int64)
        nat = native.kernels()

        def solo_rate():
            ticks, t0 = 0, time.monotonic()
            while time.monotonic() - t0 < 0.05:
                ticks += 1
            return ticks / 0.05

        rate = solo_rate()
        done = threading.Event()

        def worker():
            with pool.thread_override(2):
                nat.continuous_splits(values, classes, offsets, ncls)
            done.set()

        t = threading.Thread(target=worker)
        start = time.monotonic()
        t.start()
        ticks = 0
        while not done.is_set():
            ticks += 1
        duration = time.monotonic() - start
        t.join()
        assert duration > 0.01, "scan too fast to observe; enlarge input"
        assert ticks > rate * duration * 0.02
