"""Unit and property tests for gini split evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sprint.gini import (
    SplitCandidate,
    best_categorical_split,
    best_continuous_split,
    gini,
    gini_from_counts,
)


class TestGiniIndex:
    def test_pure_set_is_zero(self):
        assert gini_from_counts(np.array([10, 0])) == 0.0

    def test_even_binary_split_is_half(self):
        assert gini_from_counts(np.array([5, 5])) == pytest.approx(0.5)

    def test_empty_set_is_zero(self):
        assert gini_from_counts(np.array([0, 0])) == 0.0

    def test_three_class_uniform(self):
        assert gini_from_counts(np.array([4, 4, 4])) == pytest.approx(2 / 3)

    def test_from_labels(self):
        labels = np.array([0, 0, 1, 1], dtype=np.int32)
        assert gini(labels, 2) == pytest.approx(0.5)

    def test_paper_definition(self):
        """gini(S) = 1 - sum p_j^2 (paper §2.2)."""
        counts = np.array([3, 7])
        expected = 1 - (0.3**2 + 0.7**2)
        assert gini_from_counts(counts) == pytest.approx(expected)


class TestContinuousSplit:
    def test_perfect_split(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        classes = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        cand = best_continuous_split(values, classes, 2)
        assert cand.weighted_gini == pytest.approx(0.0)
        assert cand.threshold == pytest.approx(6.5)  # midpoint of 3 and 10
        assert cand.n_left == 3 and cand.n_right == 3

    def test_midpoint_rule(self):
        values = np.array([1.0, 3.0])
        classes = np.array([0, 1], dtype=np.int32)
        cand = best_continuous_split(values, classes, 2)
        assert cand.threshold == pytest.approx(2.0)

    def test_all_equal_values_no_split(self):
        values = np.array([5.0, 5.0, 5.0])
        classes = np.array([0, 1, 0], dtype=np.int32)
        assert best_continuous_split(values, classes, 2) is None

    def test_single_record_no_split(self):
        assert best_continuous_split(
            np.array([1.0]), np.array([0], dtype=np.int32), 2
        ) is None

    def test_duplicates_never_split_apart(self):
        """Candidate points exist only between distinct values."""
        values = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        classes = np.array([0, 0, 1, 0, 1], dtype=np.int32)
        cand = best_continuous_split(values, classes, 2)
        assert cand.threshold in (1.5, 2.5)

    def test_earliest_tie_wins(self):
        """Symmetric data: the first optimal boundary is chosen
        (determinism across schemes relies on this)."""
        values = np.array([1.0, 2.0, 3.0, 4.0])
        classes = np.array([0, 1, 0, 1], dtype=np.int32)
        cand = best_continuous_split(values, classes, 2)
        repeat = best_continuous_split(values, classes, 2)
        assert cand.threshold == repeat.threshold

    def test_work_points_is_record_count(self):
        values = np.arange(50, dtype=np.float64)
        classes = (np.arange(50) % 2).astype(np.int32)
        cand = best_continuous_split(values, classes, 2)
        assert cand.work_points == 50


class TestCategoricalSplit:
    def test_perfect_split(self):
        values = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        classes = np.array([0, 0, 1, 1, 1, 1], dtype=np.int32)
        cand = best_categorical_split(values, classes, 3, 2)
        assert cand.weighted_gini == pytest.approx(0.0)
        assert cand.subset in (frozenset({0}), frozenset({1, 2}))

    def test_single_value_no_split(self):
        values = np.zeros(5, dtype=np.int64)
        classes = np.array([0, 1, 0, 1, 0], dtype=np.int32)
        assert best_categorical_split(values, classes, 3, 2) is None

    def test_subset_is_proper(self):
        values = np.array([0, 1, 2, 3] * 5, dtype=np.int64)
        classes = (np.arange(20) % 2).astype(np.int32)
        cand = best_categorical_split(values, classes, 4, 2)
        assert 0 < len(cand.subset) < 4

    def test_greedy_used_above_threshold(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 15, 600)
        classes = (values % 2).astype(np.int32)
        cand = best_categorical_split(
            values, classes, 15, 2, max_exhaustive=10
        )
        # Perfect split exists: even vs odd codes; greedy should find it.
        assert cand.weighted_gini == pytest.approx(0.0, abs=1e-12)
        assert cand.subset in (
            frozenset(range(0, 15, 2)),
            frozenset(range(1, 15, 2)),
        )

    def test_exhaustive_matches_greedy_on_easy_case(self):
        values = np.array([0, 0, 1, 1, 2, 2, 3, 3], dtype=np.int64)
        classes = np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int32)
        ex = best_categorical_split(values, classes, 4, 2, max_exhaustive=10)
        gr = best_categorical_split(values, classes, 4, 2, max_exhaustive=1)
        assert ex.weighted_gini == pytest.approx(gr.weighted_gini)

    def test_exhaustive_subset_count(self):
        """With v present values, 2^(v-1) - 1 subsets are evaluated."""
        values = np.array([0, 1, 2] * 4, dtype=np.int64)
        classes = (np.arange(12) % 2).astype(np.int32)
        cand = best_categorical_split(values, classes, 3, 2)
        assert cand.work_points == 3  # 2^2 - 1


class TestSplitCandidate:
    def test_requires_exactly_one_test(self):
        with pytest.raises(ValueError, match="exactly one"):
            SplitCandidate(0.1, threshold=1.0, subset=frozenset({1}),
                           n_left=1, n_right=1, work_points=1)
        with pytest.raises(ValueError, match="exactly one"):
            SplitCandidate(0.1, threshold=None, subset=None,
                           n_left=1, n_right=1, work_points=1)

    def test_requires_nonempty_sides(self):
        with pytest.raises(ValueError, match="non-empty"):
            SplitCandidate(0.1, threshold=1.0, subset=None,
                           n_left=0, n_right=5, work_points=1)

    def test_is_continuous(self):
        cont = SplitCandidate(0.1, 1.0, None, 1, 1, 1)
        cat = SplitCandidate(0.1, None, frozenset({0}), 1, 1, 1)
        assert cont.is_continuous and not cat.is_continuous


# -- property-based tests --------------------------------------------------------

labels_strategy = st.lists(st.integers(0, 2), min_size=2, max_size=80)


@settings(max_examples=60, deadline=None)
@given(labels=labels_strategy)
def test_gini_bounds(labels):
    """0 <= gini < 1 - 1/k for k classes."""
    g = gini(np.array(labels, dtype=np.int32), 3)
    assert 0.0 <= g <= 2 / 3 + 1e-12


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(0, 20), min_size=2, max_size=60),
    seed=st.integers(0, 1000),
)
def test_continuous_split_never_worse_than_parent(values, seed):
    """A returned split's weighted gini never exceeds the parent's gini."""
    rng = np.random.default_rng(seed)
    values = np.sort(np.array(values, dtype=np.float64))
    classes = rng.integers(0, 2, len(values)).astype(np.int32)
    cand = best_continuous_split(values, classes, 2)
    parent = gini(classes, 2)
    if cand is not None:
        assert cand.weighted_gini <= parent + 1e-9
        assert cand.n_left + cand.n_right == len(values)
        assert values[0] < cand.threshold <= values[-1]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 50),
    cardinality=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_categorical_split_invariants(n, cardinality, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, cardinality, n)
    classes = rng.integers(0, 2, n).astype(np.int32)
    cand = best_categorical_split(values, classes, cardinality, 2)
    if cand is not None:
        parent = gini(classes, 2)
        assert cand.weighted_gini <= parent + 1e-9
        assert cand.n_left + cand.n_right == n
        present = set(np.unique(values).tolist())
        assert set(cand.subset) < present  # proper subset of present values
