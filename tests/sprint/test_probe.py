"""Unit tests for the probe structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sprint.probe import BitProbe, HashProbe


class TestBitProbe:
    def test_mark_and_lookup(self):
        p = BitProbe(10)
        p.mark_left(np.array([1, 3, 5]))
        np.testing.assert_array_equal(
            p.is_left(np.array([0, 1, 2, 3])), [False, True, False, True]
        )

    def test_clear(self):
        p = BitProbe(10)
        p.mark_left(np.array([1, 2]))
        p.clear(np.array([1]))
        np.testing.assert_array_equal(
            p.is_left(np.array([1, 2])), [False, True]
        )

    def test_disjoint_leaves_do_not_interfere(self):
        """The global bit probe serves several leaves at once because
        their tid sets are disjoint (paper §3.2.1)."""
        p = BitProbe(20)
        leaf_a = np.array([0, 1, 2, 3])
        leaf_b = np.array([10, 11, 12, 13])
        p.mark_left(leaf_a[:2])
        p.clear(leaf_a[2:])
        p.mark_left(leaf_b[1:])
        p.clear(leaf_b[:1])
        np.testing.assert_array_equal(
            p.is_left(leaf_a), [True, True, False, False]
        )
        np.testing.assert_array_equal(
            p.is_left(leaf_b), [False, True, True, True]
        )

    def test_nbytes(self):
        assert BitProbe(1000).nbytes == 1000

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BitProbe(-1)


class TestHashProbe:
    def test_mark_and_lookup(self):
        p = HashProbe()
        p.mark_left(np.array([5, 7]))
        np.testing.assert_array_equal(
            p.is_left(np.array([5, 6, 7])), [True, False, True]
        )

    def test_inverted_stores_right_side(self):
        """The paper keeps "only the smaller child's tids"; the inverted
        probe stores the right side and negates lookups."""
        p = HashProbe(invert=True)
        p.mark_right(np.array([1, 2]))
        np.testing.assert_array_equal(
            p.is_left(np.array([1, 2, 3])), [False, False, True]
        )

    def test_wrong_side_rejected(self):
        with pytest.raises(RuntimeError):
            HashProbe().mark_right(np.array([1]))
        with pytest.raises(RuntimeError):
            HashProbe(invert=True).mark_left(np.array([1]))

    def test_clear(self):
        p = HashProbe()
        p.mark_left(np.array([1, 2]))
        p.clear(np.array([2]))
        np.testing.assert_array_equal(
            p.is_left(np.array([1, 2])), [True, False]
        )

    def test_nbytes_grows(self):
        p = HashProbe()
        empty = p.nbytes
        p.mark_left(np.arange(100))
        assert p.nbytes > empty

    def test_nbytes_is_exact_backing_store(self):
        """8 bytes per stored tid — the real array footprint, which the
        probe ablation compares against the bit probe's one bit/tuple."""
        p = HashProbe()
        assert p.nbytes == 0
        p.mark_left(np.array([3, 1, 2, 1]))  # duplicates stored once
        assert len(p) == 3
        assert p.nbytes == 3 * 8

    def test_lookup_beyond_largest_stored_tid(self):
        """Lookups past the end of the sorted store must not report a
        false positive (the classic off-by-one of sorted membership)."""
        p = HashProbe()
        p.mark_left(np.array([2, 5]))
        np.testing.assert_array_equal(
            p.is_left(np.array([5, 6, 1_000_000])), [True, False, False]
        )

    def test_empty_probe_matches_nothing(self):
        p = HashProbe()
        np.testing.assert_array_equal(
            p.is_left(np.array([0, 1, 2])), [False, False, False]
        )

    def test_unsorted_marks_are_probed_correctly(self):
        p = HashProbe()
        p.mark_left(np.array([9, 0, 4]))
        p.mark_left(np.array([7, 4]))
        np.testing.assert_array_equal(
            p.is_left(np.array([0, 4, 5, 7, 9])),
            [True, True, False, True, True],
        )


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 10_000),
)
def test_probes_agree(n, seed):
    """Bit and hash probes give identical answers for any marking."""
    rng = np.random.default_rng(seed)
    left_mask = rng.random(n) < 0.5
    tids = np.arange(n)
    bit = BitProbe(n)
    hashp = HashProbe()
    bit.mark_left(tids[left_mask])
    bit.clear(tids[~left_mask])
    hashp.mark_left(tids[left_mask])
    np.testing.assert_array_equal(bit.is_left(tids), hashp.is_left(tids))
    np.testing.assert_array_equal(bit.is_left(tids), left_mask)
