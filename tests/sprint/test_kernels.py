"""Property tests for the level-batched E/W/S kernels.

The segmented kernels in :mod:`repro.sprint.kernels` must reproduce the
per-leaf vectorized path *bit-for-bit* (same thresholds, subsets and
tie-breaks — every scheme's determinism rests on that) and agree with
the record-at-a-time scan reference in :mod:`repro.sprint.histogram`
up to float round-off.  These tests cross-check all three on random
leaf partitions, including the awkward shapes the batched path must
survive: empty segments, single-record leaves, all-equal values, and
both impurity criteria.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sprint.kernels as kernels
from repro.sprint.gini import (
    best_categorical_split,
    best_continuous_split_dense,
)
from repro.sprint.histogram import CountMatrix, scan_continuous_split
from repro.sprint.kernels import (
    SINGLE_LEAF_DENSE_LIMIT,
    ScratchArena,
    concat_field,
    partition_stable,
    segment_offsets,
    segmented_categorical_counts,
    segmented_categorical_splits,
    segmented_continuous_splits,
)
from repro.sprint.records import CONTINUOUS_RECORD

CRITERIA = ("gini", "entropy")


def random_level(rng, n_classes, quantized):
    """Random per-leaf sorted segments, with empty/tiny leaves likely."""
    n_segs = int(rng.integers(1, 7))
    segments = []
    for _ in range(n_segs):
        m = int(rng.integers(0, 16))
        if quantized:
            values = np.sort(rng.choice([0.0, 1.5, 2.0, 7.25], m))
        else:
            values = np.sort(rng.random(m))
        classes = rng.integers(0, n_classes, m).astype(np.int32)
        segments.append((values, classes))
    values = np.concatenate([v for v, _ in segments])
    classes = np.concatenate([c for _, c in segments])
    offsets = np.zeros(n_segs + 1, dtype=np.int64)
    np.cumsum([len(v) for v, _ in segments], out=offsets[1:])
    return segments, values, classes, offsets


def exact_impurity_tie(classes, a, b, n_classes, criterion):
    """True when split candidates *a* and *b* tie exactly in impurity.

    Two different boundaries can have mathematically equal weighted
    impurity while each implementation's float round-off orders the tie
    differently, so cross-implementation tests cannot assume a unique
    argmin.  Weighted gini is rational in the class counts, so the tie is
    decided exactly with Fraction arithmetic.  Entropy is not rational; a
    tie is recognised only when one partition's per-side count multisets
    are a permutation of the other's (which makes the impurity sums equal
    termwise).
    """

    def side_counts(n_left):
        left = np.bincount(classes[:n_left], minlength=n_classes)
        right = np.bincount(classes[n_left:], minlength=n_classes)
        return left, right

    la, ra = side_counts(a.n_left)
    lb, rb = side_counts(b.n_left)
    if criterion == "gini":

        def weighted_gini(left, right):
            total = int(left.sum()) + int(right.sum())
            acc = Fraction(0)
            for side in (left, right):
                n = int(side.sum())
                if n:
                    sq = sum(int(k) * int(k) for k in side)
                    acc += Fraction(n) - Fraction(sq, n)
            return acc / total

        return weighted_gini(la, ra) == weighted_gini(lb, rb)
    sides_a = sorted((tuple(sorted(map(int, la))), tuple(sorted(map(int, ra)))))
    sides_b = sorted((tuple(sorted(map(int, lb))), tuple(sorted(map(int, rb)))))
    return sides_a == sides_b


class TestSegmentedContinuous:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_classes=st.integers(2, 4),
        criterion=st.sampled_from(CRITERIA),
        quantized=st.booleans(),
    )
    def test_bit_identical_to_dense(self, seed, n_classes, criterion, quantized):
        """Same floats, same tie-breaks as the per-leaf dense path."""
        rng = np.random.default_rng(seed)
        segments, values, classes, offsets = random_level(
            rng, n_classes, quantized
        )
        got = segmented_continuous_splits(
            values, classes, offsets, n_classes, criterion=criterion
        )
        assert len(got) == len(segments)
        for candidate, (v, c) in zip(got, segments):
            want = best_continuous_split_dense(
                v, c, n_classes, criterion=criterion
            )
            # repr-level equality: exact weighted impurity, threshold and
            # counts — bit-identity, not approximation.
            assert repr(candidate) == repr(want)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_classes=st.integers(2, 3),
        criterion=st.sampled_from(CRITERIA),
    )
    def test_agrees_with_scan_reference(self, seed, n_classes, criterion):
        """The histogram scan is the independent oracle (paper §2.2)."""
        rng = np.random.default_rng(seed)
        segments, values, classes, offsets = random_level(
            rng, n_classes, quantized=True
        )
        got = segmented_continuous_splits(
            values, classes, offsets, n_classes, criterion=criterion
        )
        for candidate, (v, c) in zip(got, segments):
            want = scan_continuous_split(v, c, n_classes, criterion=criterion)
            assert (candidate is None) == (want is None)
            if candidate is not None:
                assert candidate.weighted_gini == pytest.approx(
                    want.weighted_gini
                )
                if candidate.threshold == pytest.approx(want.threshold):
                    assert candidate.n_left == want.n_left
                    assert candidate.n_right == want.n_right
                else:
                    # A different boundary is acceptable only on an exact
                    # impurity tie, and the candidate must still be
                    # self-consistent with its own threshold.
                    assert exact_impurity_tie(
                        c, candidate, want, n_classes, criterion
                    )
                    assert int(np.sum(v < candidate.threshold)) == (
                        candidate.n_left
                    )
                    assert candidate.n_left + candidate.n_right == len(v)

    def test_single_record_leaves(self):
        values = np.array([3.0, 1.0, 2.0])
        classes = np.array([0, 1, 0], dtype=np.int32)
        offsets = np.array([0, 1, 2, 3], dtype=np.int64)
        assert segmented_continuous_splits(values, classes, offsets, 2) == [
            None,
            None,
            None,
        ]

    def test_all_equal_values_has_no_split(self):
        values = np.full(8, 4.0)
        classes = np.array([0, 1] * 4, dtype=np.int32)
        offsets = np.array([0, 4, 8], dtype=np.int64)
        assert segmented_continuous_splits(values, classes, offsets, 2) == [
            None,
            None,
        ]

    def test_empty_segments_between_leaves(self):
        values = np.array([1.0, 2.0, 5.0, 6.0])
        classes = np.array([0, 1, 0, 1], dtype=np.int32)
        offsets = np.array([0, 0, 2, 2, 4, 4], dtype=np.int64)
        got = segmented_continuous_splits(values, classes, offsets, 2)
        assert got[0] is None and got[2] is None and got[4] is None
        assert got[1].threshold == pytest.approx(1.5)
        assert got[3].threshold == pytest.approx(5.5)

    def test_equal_boundary_values_across_segments(self):
        """A segment starting with its predecessor's last value must
        still start a fresh run — no split point leaks across leaves."""
        values = np.array([1.0, 2.0, 2.0, 3.0])
        classes = np.array([0, 1, 0, 1], dtype=np.int32)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        got = segmented_continuous_splits(values, classes, offsets, 2)
        assert got[0].threshold == pytest.approx(1.5)
        assert got[1].threshold == pytest.approx(2.5)

    def test_tie_break_picks_earliest_candidate(self):
        """Symmetric data ties two thresholds; the first wins, exactly
        as in the per-leaf scan order."""
        values = np.array([1.0, 2.0, 3.0, 4.0])
        classes = np.array([0, 1, 0, 1], dtype=np.int32)
        offsets = np.array([0, 4], dtype=np.int64)
        got = segmented_continuous_splits(values, classes, offsets, 2)[0]
        want = best_continuous_split_dense(values, classes, 2)
        assert repr(got) == repr(want)
        assert got.threshold == pytest.approx(1.5)

    def test_large_single_segment_takes_segmented_path(self):
        """Above SINGLE_LEAF_DENSE_LIMIT the run-compressed path runs
        even for one segment; it must still match the dense scan."""
        n = SINGLE_LEAF_DENSE_LIMIT + 1
        rng = np.random.default_rng(0)
        values = np.sort(rng.integers(0, 16, n).astype(np.float64))
        classes = rng.integers(0, 2, n).astype(np.int32)
        offsets = np.array([0, n], dtype=np.int64)
        got = segmented_continuous_splits(values, classes, offsets, 2)[0]
        want = best_continuous_split_dense(values, classes, 2)
        assert repr(got) == repr(want)


class TestSegmentedCategorical:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        cardinality=st.integers(2, 6),
        n_classes=st.integers(2, 3),
        criterion=st.sampled_from(CRITERIA),
    )
    def test_counts_and_splits_match_per_leaf(
        self, seed, cardinality, n_classes, criterion
    ):
        rng = np.random.default_rng(seed)
        n_segs = int(rng.integers(1, 6))
        lengths = [int(rng.integers(0, 12)) for _ in range(n_segs)]
        values = [rng.integers(0, cardinality, m) for m in lengths]
        classes = [
            rng.integers(0, n_classes, m).astype(np.int32) for m in lengths
        ]
        offsets = segment_offsets(values)
        flat_v = np.concatenate(values)
        flat_c = np.concatenate(classes)

        counts = segmented_categorical_counts(
            flat_v, flat_c, offsets, cardinality, n_classes
        )
        for s in range(n_segs):
            reference = CountMatrix.from_records(
                values[s], classes[s], cardinality, n_classes
            )
            np.testing.assert_array_equal(counts[s], reference.counts)

        got = segmented_categorical_splits(
            flat_v, flat_c, offsets, cardinality, n_classes,
            criterion=criterion,
        )
        for s in range(n_segs):
            want = (
                best_categorical_split(
                    values[s], classes[s], cardinality, n_classes,
                    criterion=criterion,
                )
                if lengths[s] >= 2
                else None
            )
            assert repr(got[s]) == repr(want)  # includes the subset

    def test_dense_and_fallback_counting_agree(self, monkeypatch):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 5, 60)
        classes = rng.integers(0, 2, 60).astype(np.int32)
        offsets = np.array([0, 20, 20, 60], dtype=np.int64)
        dense = segmented_categorical_counts(values, classes, offsets, 5, 2)
        monkeypatch.setattr(kernels, "DENSE_COUNTS_LIMIT", 0)
        fallback = segmented_categorical_counts(values, classes, offsets, 5, 2)
        np.testing.assert_array_equal(dense, fallback)


class TestPartitionStable:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(0, 64))
    def test_matches_boolean_indexing(self, seed, n):
        rng = np.random.default_rng(seed)
        records = np.zeros(n, dtype=CONTINUOUS_RECORD)
        records["tid"] = rng.permutation(n)
        records["value"] = rng.random(n)
        mask = rng.random(n) < 0.5
        left, right = partition_stable(records, mask)
        np.testing.assert_array_equal(left, records[mask])
        np.testing.assert_array_equal(right, records[~mask])

    def test_all_one_side(self):
        records = np.arange(5, dtype=np.int64)
        left, right = partition_stable(records, np.ones(5, dtype=bool))
        np.testing.assert_array_equal(left, records)
        assert len(right) == 0
        left, right = partition_stable(records, np.zeros(5, dtype=bool))
        assert len(left) == 0
        np.testing.assert_array_equal(right, records)

    def test_compress_path_matches_boolean_indexing(self):
        """Above PARTITION_COMPRESS_MIN the counted-compress spelling
        runs; it must produce the same stable order."""
        n = kernels.PARTITION_COMPRESS_MIN + 17
        rng = np.random.default_rng(5)
        records = np.zeros(n, dtype=CONTINUOUS_RECORD)
        records["tid"] = rng.permutation(n)
        mask = rng.random(n) < 0.3
        left, right = partition_stable(records, mask)
        np.testing.assert_array_equal(left, records[mask])
        np.testing.assert_array_equal(right, records[~mask])
        # Results share one backing buffer and persist without copying.
        assert left.base is not None and left.base is right.base

    def test_arena_path_used_for_any_size(self):
        arena = ScratchArena()
        records = np.arange(7, dtype=np.int64)
        mask = np.array([1, 0, 1, 1, 0, 0, 1], dtype=bool)
        left, right = partition_stable(records, mask, arena)
        np.testing.assert_array_equal(left, records[mask])
        np.testing.assert_array_equal(right, records[~mask])
        assert arena.allocated_bytes == records.nbytes

    def test_arena_reuses_buffers(self):
        arena = ScratchArena()
        records = np.arange(100, dtype=np.int64)
        mask = records % 2 == 0
        partition_stable(records, mask, arena)
        first_alloc = arena.allocated_bytes
        assert first_alloc == records.nbytes
        assert arena.reused_bytes == 0
        partition_stable(records, mask, arena)
        assert arena.allocated_bytes == first_alloc  # no new allocation
        assert arena.reused_bytes == records.nbytes

    def test_arena_grows_geometrically(self):
        arena = ScratchArena()
        arena.take(np.int64, 10)
        arena.take(np.int64, 11)  # grows to max(11, 2*10) = 20
        view = arena.take(np.int64, 20)
        assert len(view) == 20
        assert arena.allocated_bytes == (10 + 20) * 8
        assert arena.reused_bytes == 20 * 8

    def test_arena_views_are_per_dtype(self):
        arena = ScratchArena()
        a = arena.take(np.int64, 4)
        b = arena.take(np.float32, 4)
        assert a.dtype == np.int64 and b.dtype == np.float32

    def test_take_zero_clears_recycled_bytes(self):
        # take() hands back whatever the previous borrower left unless
        # zero= is set — accumulate-only consumers (the native
        # categorical counter) depend on the flag.
        arena = ScratchArena()
        dirty = arena.take(np.int64, 16)
        dirty.fill(-1)
        stale = arena.take(np.int64, 8)
        assert stale.base is dirty.base  # recycled, stale bytes visible
        assert (stale == -1).all()
        clean = arena.take(np.int64, 8, zero=True)
        assert clean.base is dirty.base  # still recycled, but cleared
        assert not clean.any()

    def test_categorical_counts_arena_reuse_no_stale_counts(self):
        # Regression: an arena-backed count tensor must not inherit the
        # previous level's counts (the C kernel only increments, so a
        # non-zeroed buffer double-counts).  Shrinking sizes guarantee
        # buffer reuse; the fresh non-arena result is the oracle.
        rng = np.random.default_rng(11)
        arena = ScratchArena()
        arena.take(np.int64, 4096).fill(99)  # pre-dirty the buffer
        for n, card, ncls in ((300, 6, 3), (120, 4, 2), (40, 3, 2)):
            offsets = np.array([0, n // 3, n // 3, n], dtype=np.int64)
            values = rng.integers(0, card, size=n).astype(np.int64)
            classes = rng.integers(0, ncls, size=n).astype(np.int32)
            got = segmented_categorical_counts(
                values, classes, offsets, card, ncls, arena=arena
            )
            fresh = segmented_categorical_counts(
                values, classes, offsets, card, ncls
            )
            np.testing.assert_array_equal(got, fresh)


class TestLevelHelpers:
    def test_segment_offsets(self):
        arrays = [np.arange(3), np.arange(0), np.arange(2)]
        np.testing.assert_array_equal(
            segment_offsets(arrays), [0, 3, 3, 5]
        )
        np.testing.assert_array_equal(segment_offsets([]), [0])

    def test_concat_field_single_array_is_a_view(self):
        records = np.zeros(4, dtype=CONTINUOUS_RECORD)
        field = concat_field([records], "value")
        assert field.base is records  # no copy on the single-leaf path
