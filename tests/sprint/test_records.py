"""Unit tests for attribute-list record layouts."""

import numpy as np
import pytest

from repro.data.schema import Attribute, AttributeKind
from repro.sprint.records import (
    CATEGORICAL_RECORD,
    CONTINUOUS_RECORD,
    make_records,
    record_dtype,
    record_nbytes,
)

CONT = Attribute("age", AttributeKind.CONTINUOUS)
CAT = Attribute("car", AttributeKind.CATEGORICAL, 5)


class TestDtypes:
    def test_fields(self):
        assert CONTINUOUS_RECORD.names == ("value", "cls", "tid")
        assert CATEGORICAL_RECORD.names == ("value", "cls", "tid")

    def test_dispatch(self):
        assert record_dtype(CONT) == CONTINUOUS_RECORD
        assert record_dtype(CAT) == CATEGORICAL_RECORD

    def test_record_nbytes(self):
        assert record_nbytes(CONT) == CONTINUOUS_RECORD.itemsize
        assert record_nbytes(CAT) == CATEGORICAL_RECORD.itemsize


class TestMakeRecords:
    def test_continuous(self):
        recs = make_records(
            CONT,
            np.array([1.5, 2.5]),
            np.array([0, 1], dtype=np.int32),
            np.array([7, 8], dtype=np.int64),
        )
        assert recs.dtype == CONTINUOUS_RECORD
        np.testing.assert_array_equal(recs["value"], [1.5, 2.5])
        np.testing.assert_array_equal(recs["cls"], [0, 1])
        np.testing.assert_array_equal(recs["tid"], [7, 8])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            make_records(
                CONT,
                np.array([1.0]),
                np.array([0, 1], dtype=np.int32),
                np.array([0], dtype=np.int64),
            )

    def test_empty(self):
        recs = make_records(
            CAT,
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int32),
            np.array([], dtype=np.int64),
        )
        assert len(recs) == 0
