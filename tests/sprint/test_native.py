"""Differential + gate tests for the native (C) training kernels.

Every kernel in :mod:`repro.sprint.native` must reproduce its numpy twin
in :mod:`repro.sprint.kernels` *bit-for-bit* — same weighted ginis, same
tie-breaks, same byte order out of the partition.  The tests here flip
the backend mid-process through the shared gate in
:mod:`repro._native.cc`, which also gets its precedence rules pinned
down (CLI override > environment > default-on), and the
"one compile/cache helper, zero duplicated compiler probing" refactor
is asserted structurally.

Kernel tests skip cleanly when no C compiler is available; the gate
tests run everywhere.
"""

import inspect
import os
import sys
import threading
import time

import numpy as np
import pytest

from repro._native import cc
from repro.sprint import kernels as K
from repro.sprint import native
from repro.sprint.probe import HashProbe
from repro.sprint.records import CATEGORICAL_RECORD, CONTINUOUS_RECORD

needs_native = pytest.mark.skipif(
    not native.native_available(),
    reason="no C compiler / native kernels unavailable",
)


def random_continuous_level(rng, n_classes, quantized=False):
    """Random sorted segments with empty/tiny leaves and value ties."""
    n_segs = int(rng.integers(1, 8))
    offsets = [0]
    vs, cs = [], []
    for _ in range(n_segs):
        m = int(rng.integers(0, 24))
        if quantized:
            values = np.sort(rng.choice([0.0, 1.5, 2.0, 7.25], m))
        else:
            values = np.sort(rng.random(m))
        vs.append(values)
        cs.append(rng.integers(0, n_classes, m).astype(np.int32))
        offsets.append(offsets[-1] + m)
    values = np.concatenate(vs) if vs else np.empty(0)
    classes = np.concatenate(cs) if cs else np.empty(0, np.int32)
    return values, classes, np.asarray(offsets, dtype=np.int64)


def assert_candidates_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if x is None or y is None:
            assert x is None and y is None
            continue
        assert x.weighted_gini == y.weighted_gini  # bit-identical, no tol
        assert x.threshold == y.threshold
        assert x.subset == y.subset
        assert (x.n_left, x.n_right, x.work_points) == (
            y.n_left, y.n_right, y.work_points
        )


@needs_native
class TestContinuousDifferential:
    @pytest.mark.parametrize("quantized", [False, True])
    @pytest.mark.parametrize("n_classes", [2, 3, 5])
    def test_matches_numpy(self, n_classes, quantized):
        rng = np.random.default_rng(17 * n_classes + quantized)
        for _ in range(40):
            values, classes, offsets = random_continuous_level(
                rng, n_classes, quantized
            )
            with cc.native_override("off"):
                ref = K.segmented_continuous_splits(
                    values, classes, offsets, n_classes
                )
            with cc.native_override("on"):
                got = K.segmented_continuous_splits(
                    values, classes, offsets, n_classes
                )
            assert_candidates_identical(ref, got)

    def test_strided_record_fields(self):
        # concat_field's single-chunk path yields strided views of the
        # packed record array; the native wrapper must stage them.
        rng = np.random.default_rng(5)
        rec = np.empty(200, dtype=CONTINUOUS_RECORD)
        rec["value"] = np.sort(rng.normal(size=200))
        rec["cls"] = rng.integers(0, 3, 200)
        rec["tid"] = np.arange(200)
        offsets = np.array([0, 90, 90, 200], dtype=np.int64)
        with cc.native_override("off"):
            ref = K.segmented_continuous_splits(
                rec["value"], rec["cls"], offsets, 3
            )
        with cc.native_override("on"):
            got = K.segmented_continuous_splits(
                rec["value"], rec["cls"], offsets, 3
            )
        assert_candidates_identical(ref, got)

    def test_entropy_stays_on_numpy(self):
        # The C scan implements gini only; other criteria must fall
        # through to the numpy spelling (not crash, not mis-score).
        rng = np.random.default_rng(9)
        values, classes, offsets = random_continuous_level(rng, 3)
        with cc.native_override("on"):
            got = K.segmented_continuous_splits(
                values, classes, offsets, 3, criterion="entropy"
            )
        with cc.native_override("off"):
            ref = K.segmented_continuous_splits(
                values, classes, offsets, 3, criterion="entropy"
            )
        assert_candidates_identical(ref, got)


@needs_native
class TestCategoricalDifferential:
    def test_counts_match_numpy(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            n_seg = int(rng.integers(1, 6))
            card = int(rng.integers(1, 8))
            ncls = int(rng.integers(2, 4))
            lens = rng.integers(0, 30, size=n_seg)
            offsets = np.concatenate([[0], np.cumsum(lens)]).astype(np.int64)
            n = int(offsets[-1])
            values = rng.integers(0, card, size=n).astype(np.int64)
            classes = rng.integers(0, ncls, size=n).astype(np.int32)
            with cc.native_override("off"):
                ref = K.segmented_categorical_counts(
                    values, classes, offsets, card, ncls
                )
            with cc.native_override("on"):
                got = K.segmented_categorical_counts(
                    values, classes, offsets, card, ncls
                )
            np.testing.assert_array_equal(ref, got)

    def test_splits_match_numpy(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            n = int(rng.integers(4, 80))
            card, ncls = 5, 3
            offsets = np.array([0, n // 2, n], dtype=np.int64)
            values = rng.integers(0, card, size=n).astype(np.int64)
            classes = rng.integers(0, ncls, size=n).astype(np.int32)
            with cc.native_override("off"):
                ref = K.segmented_categorical_splits(
                    values, classes, offsets, card, ncls
                )
            with cc.native_override("on"):
                got = K.segmented_categorical_splits(
                    values, classes, offsets, card, ncls
                )
            assert_candidates_identical(ref, got)


@needs_native
class TestPartitionDifferential:
    @pytest.mark.parametrize("dtype", [CONTINUOUS_RECORD, CATEGORICAL_RECORD])
    def test_matches_numpy(self, dtype):
        rng = np.random.default_rng(4)
        for n in (0, 1, 2, 17, 500):
            rec = np.zeros(n, dtype=dtype)
            rec["cls"] = rng.integers(0, 3, n)
            rec["tid"] = rng.permutation(n)
            mask = rng.random(n) < 0.4
            with cc.native_override("off"):
                l0, r0 = K.partition_stable(rec, mask)
            with cc.native_override("on"):
                l1, r1 = K.partition_stable(rec, mask)
            np.testing.assert_array_equal(l0, l1)
            np.testing.assert_array_equal(r0, r1)

    def test_arena_halves_share_buffer(self):
        arena = K.ScratchArena()
        rec = np.zeros(64, dtype=CONTINUOUS_RECORD)
        rec["tid"] = np.arange(64)
        mask = rec["tid"] % 3 == 0
        with cc.native_override("on"):
            left, right = K.partition_stable(rec, mask, arena=arena)
        assert left.base is right.base  # one scatter buffer, two views
        np.testing.assert_array_equal(left["tid"], rec["tid"][mask])
        np.testing.assert_array_equal(right["tid"], rec["tid"][~mask])


@needs_native
class TestMembershipDifferential:
    def test_matches_isin(self):
        rng = np.random.default_rng(6)
        for _ in range(25):
            probe = HashProbe()
            stored = rng.choice(
                2000, size=int(rng.integers(0, 60)), replace=False
            ).astype(np.int64)
            if stored.size:
                probe.mark_left(stored)
            queries = rng.integers(0, 2000, int(rng.integers(0, 90))).astype(
                np.int64
            )
            with cc.native_override("off"):
                ref = probe.contains(queries)
            with cc.native_override("on"):
                got = probe.contains(queries)
            np.testing.assert_array_equal(ref, got)

    def test_strided_queries(self):
        probe = HashProbe()
        probe.mark_left(np.array([3, 7, 11], dtype=np.int64))
        rec = np.zeros(20, dtype=CONTINUOUS_RECORD)
        rec["tid"] = np.arange(20)
        with cc.native_override("on"):
            got = probe.contains(rec["tid"])  # strided field view
        with cc.native_override("off"):
            ref = probe.contains(rec["tid"])
        np.testing.assert_array_equal(ref, got)


class TestGate:
    """Override > environment > default-on; re-read every call."""

    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(cc.ENV_FLAG, raising=False)
        cc.set_native_override(None)
        assert cc.native_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no", "FALSE"])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(cc.ENV_FLAG, value)
        cc.set_native_override(None)
        assert not cc.native_enabled()
        assert native.active_kernels() is None

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(cc.ENV_FLAG, "0")
        with cc.native_override("on"):
            assert cc.native_enabled()
        monkeypatch.setenv(cc.ENV_FLAG, "1")
        with cc.native_override("off"):
            assert not cc.native_enabled()
            assert native.active_kernels() is None
        assert cc.native_enabled()  # restored to env control

    def test_auto_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(cc.ENV_FLAG, "0")
        with cc.native_override("auto"):
            assert not cc.native_enabled()

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            cc.set_native_override("maybe")

    def test_override_nesting_restores(self):
        cc.set_native_override(None)
        with cc.native_override("off"):
            with cc.native_override("on"):
                assert cc.native_enabled()
            assert not cc.native_enabled()
        assert cc.get_native_override() is None


class TestSharedCompilePlumbing:
    """Both kernel families ride one cc helper — no duplicated probing."""

    def test_no_compiler_probing_outside_cc(self):
        # The refactor's contract: subprocess/shutil/compiler handling
        # lives in repro._native.cc and nowhere else.
        import repro.classify.native as route_native

        for mod in (route_native, native):
            src = inspect.getsource(mod)
            assert "subprocess" not in src
            assert "shutil.which" not in src
            assert "cc.compile_cached" in src
        for legacy in ("_compile", "_cache_dir"):
            assert not hasattr(route_native, legacy)

    def test_env_flag_reexported(self):
        import repro.classify.native as route_native

        assert route_native.ENV_FLAG == cc.ENV_FLAG == "REPRO_NATIVE"

    @needs_native
    def test_artifacts_share_cache_dir(self):
        import repro.classify.native as route_native

        train = native.kernels()
        with cc.native_override("on"):  # route kernel honors the gate
            route = route_native.native_kernel()
        assert train is not None and route is not None
        cache = cc.cache_dir()
        assert os.path.dirname(train.path) == cache
        assert os.path.dirname(route.path) == cache
        assert train.path != route.path  # distinct sources, distinct tags

    def test_compile_failure_memoized(self, monkeypatch):
        calls = []

        def failing_probe():
            calls.append(1)
            return None

        monkeypatch.setattr(cc, "find_compiler", failing_probe)
        monkeypatch.setattr(cc, "_compiled", {})
        assert cc.compile_cached("int bogus;", "bogus") is None
        assert cc.compile_cached("int bogus;", "bogus") is None
        assert len(calls) == 1  # broken toolchain probed once, not per call


@needs_native
class TestGilRelease:
    """The C scan must release the GIL (that is the whole point)."""

    @staticmethod
    def _big_scan_args():
        # ~4M records, 64 classes, all-distinct values: a few hundred
        # ms of pure C per call, no numpy work inside the call.
        n, n_classes = 1 << 22, 64
        values = np.arange(n, dtype=np.float64)
        classes = np.arange(n, dtype=np.int64).astype(np.int32) % n_classes
        offsets = np.array([0, n], dtype=np.int64)
        return values, classes, offsets, n_classes

    def test_main_thread_progresses_during_scan(self):
        # Works even on one core: while the worker is inside the C call
        # the interpreter must keep scheduling this thread.  A kernel
        # holding the GIL freezes the loop for the whole call, so the
        # observed tick throughput collapses to the tiny pre/post-call
        # scheduling windows.
        nat = native.kernels()
        values, classes, offsets, n_classes = self._big_scan_args()

        def solo_rate():
            ticks, t0 = 0, time.monotonic()
            while time.monotonic() - t0 < 0.05:
                ticks += 1
            return ticks / 0.05

        rate = solo_rate()
        done = threading.Event()

        def worker():
            nat.continuous_splits(values, classes, offsets, n_classes)
            done.set()

        t = threading.Thread(target=worker)
        start = time.monotonic()
        t.start()
        ticks = 0
        while not done.is_set():
            ticks += 1
        duration = time.monotonic() - start
        t.join()
        assert duration > 0.01, "scan too fast to observe; enlarge input"
        # Demand >=2% of solo throughput for the call's duration — a
        # GIL-holding kernel yields only one ~5ms switch window.
        assert ticks > rate * duration * 0.02

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="needs >=2 hardware threads"
    )
    def test_two_scans_overlap(self):
        nat = native.kernels()
        values, classes, offsets, n_classes = self._big_scan_args()

        def run():
            nat.continuous_splits(values, classes, offsets, n_classes)

        run()  # warm: page in the inputs, load the .so
        t0 = time.monotonic()
        run()
        run()
        serial = time.monotonic() - t0

        threads = [threading.Thread(target=run) for _ in range(2)]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        concurrent = time.monotonic() - t0
        # Serialized execution would cost ~serial; true overlap halves
        # it.  0.75 leaves headroom for noisy shared CI runners.
        assert concurrent < 0.75 * serial
