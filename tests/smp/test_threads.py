"""Unit tests for the real-thread runtime backend."""

import threading

import pytest

from repro.smp.threads import RealThreadRuntime


class TestRealThreadRuntime:
    def test_runs_all_processors(self):
        rt = RealThreadRuntime(4)
        seen = set()
        guard = threading.Lock()

        def worker(pid):
            with guard:
                seen.add((pid, rt.pid()))

        rt.run(worker)
        assert seen == {(p, p) for p in range(4)}

    def test_exception_propagates(self):
        rt = RealThreadRuntime(2)

        def worker(pid):
            if pid == 1:
                raise ValueError("thread boom")

        with pytest.raises(ValueError, match="thread boom"):
            rt.run(worker)

    def test_lock_mutual_exclusion(self):
        rt = RealThreadRuntime(4)
        lock = rt.make_lock()
        counter = {"v": 0}

        def worker(pid):
            for _ in range(1000):
                with lock:
                    counter["v"] += 1

        rt.run(worker)
        assert counter["v"] == 4000

    def test_barrier_rendezvous(self):
        rt = RealThreadRuntime(3)
        barrier = rt.make_barrier()
        before = []
        after = []
        guard = threading.Lock()

        def worker(pid):
            with guard:
                before.append(pid)
            barrier.wait()
            with guard:
                after.append(len(before))

        rt.run(worker)
        assert after == [3, 3, 3]

    def test_condition_signal(self):
        rt = RealThreadRuntime(2)
        lock = rt.make_lock()
        cond = rt.make_condition(lock)
        state = {"ready": False, "woke": False}

        def worker(pid):
            if pid == 0:
                with lock:
                    while not state["ready"]:
                        cond.wait()
                    state["woke"] = True
            else:
                with lock:
                    state["ready"] = True
                    cond.broadcast()

        rt.run(worker)
        assert state["woke"]

    def test_charging_methods_are_noops(self):
        rt = RealThreadRuntime(1)

        def worker(pid):
            rt.compute(1e9)  # must not actually sleep
            rt.read_file("f", 1)
            rt.write_file("f", 1)
            rt.create_file("f")
            rt.drop_file("f")

        elapsed = rt.run(worker)
        assert elapsed < 5.0

    def test_pid_outside_worker_rejected(self):
        rt = RealThreadRuntime(1)
        with pytest.raises(RuntimeError, match="not running"):
            rt.pid()

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            RealThreadRuntime(0)
