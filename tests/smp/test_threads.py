"""Unit tests for the real-thread runtime backend."""

import threading

import pytest

from repro.smp.threads import RealThreadRuntime


class TestRealThreadRuntime:
    def test_runs_all_processors(self):
        rt = RealThreadRuntime(4)
        seen = set()
        guard = threading.Lock()

        def worker(pid):
            with guard:
                seen.add((pid, rt.pid()))

        rt.run(worker)
        assert seen == {(p, p) for p in range(4)}

    def test_exception_propagates(self):
        rt = RealThreadRuntime(2)

        def worker(pid):
            if pid == 1:
                raise ValueError("thread boom")

        with pytest.raises(ValueError, match="thread boom"):
            rt.run(worker)

    def test_lock_mutual_exclusion(self):
        rt = RealThreadRuntime(4)
        lock = rt.make_lock()
        counter = {"v": 0}

        def worker(pid):
            for _ in range(1000):
                with lock:
                    counter["v"] += 1

        rt.run(worker)
        assert counter["v"] == 4000

    def test_barrier_rendezvous(self):
        rt = RealThreadRuntime(3)
        barrier = rt.make_barrier()
        before = []
        after = []
        guard = threading.Lock()

        def worker(pid):
            with guard:
                before.append(pid)
            barrier.wait()
            with guard:
                after.append(len(before))

        rt.run(worker)
        assert after == [3, 3, 3]

    def test_condition_signal(self):
        rt = RealThreadRuntime(2)
        lock = rt.make_lock()
        cond = rt.make_condition(lock)
        state = {"ready": False, "woke": False}

        def worker(pid):
            if pid == 0:
                with lock:
                    while not state["ready"]:
                        cond.wait()
                    state["woke"] = True
            else:
                with lock:
                    state["ready"] = True
                    cond.broadcast()

        rt.run(worker)
        assert state["woke"]

    def test_charging_methods_are_noops(self):
        rt = RealThreadRuntime(1)

        def worker(pid):
            rt.compute(1e9)  # must not actually sleep
            rt.read_file("f", 1)
            rt.write_file("f", 1)
            rt.create_file("f")
            rt.drop_file("f")

        elapsed = rt.run(worker)
        assert elapsed < 5.0

    def test_pid_outside_worker_rejected(self):
        rt = RealThreadRuntime(1)
        with pytest.raises(RuntimeError, match="not running"):
            rt.pid()

    def test_zero_procs_means_affinity_auto(self):
        from repro.smp.cpus import available_cpus

        assert RealThreadRuntime(0).n_procs == available_cpus()

    def test_negative_procs_rejected(self):
        with pytest.raises(ValueError):
            RealThreadRuntime(-1)


class TestWorkerPool:
    def test_threads_reused_across_runs_and_runtimes(self):
        from repro.smp.threads import WORKER_POOL

        rt1 = RealThreadRuntime(3)
        rt1.run(lambda pid: None)
        started = WORKER_POOL.threads_started
        rt1.run(lambda pid: None)  # runtime is reusable
        rt2 = RealThreadRuntime(3)  # pool is shared across runtimes
        rt2.run(lambda pid: None)
        assert WORKER_POOL.threads_started == started

    def test_runtime_usable_after_worker_failure(self):
        rt = RealThreadRuntime(2)

        def bad(pid):
            raise RuntimeError("first run boom")

        with pytest.raises(RuntimeError, match="first run boom"):
            rt.run(bad)
        seen = []
        rt.run(lambda pid: seen.append(pid))
        assert sorted(seen) == [0, 1]


class TestClock:
    def test_now_counts_from_creation(self):
        rt = RealThreadRuntime(1)
        assert 0.0 <= rt.now() < 60.0  # not an absolute perf_counter value

    def test_tracer_records_nothing_in_raw_mode(self):
        from repro.smp.trace import Tracer

        tracer = Tracer()
        rt = RealThreadRuntime(1, tracer=tracer)

        def worker(pid):
            rt.compute(1.0)
            rt.read_file("f", 1000)

        rt.run(worker)
        assert tracer.intervals == []


class TestPacedMode:
    def test_compute_sleeps_scaled(self):
        rt = RealThreadRuntime(1, pace=0.01)

        def worker(pid):
            rt.compute(20.0)  # 0.2 wall seconds at pace=0.01

        elapsed = rt.run(worker)
        assert 0.15 < elapsed < 5.0

    def test_now_reports_model_seconds(self):
        rt = RealThreadRuntime(1, pace=0.01)
        times = {}

        def worker(pid):
            start = rt.now()
            rt.compute(50.0)  # 0.5 wall seconds
            times["model"] = rt.now() - start

        rt.run(worker)
        assert times["model"] == pytest.approx(50.0, rel=0.3)

    def test_disk_model_replayed(self):
        import dataclasses

        from repro.smp.machine import machine_b

        # 10x the stock bandwidths so the wall sleep stays short.
        m = dataclasses.replace(
            machine_b(1), disk_bandwidth=100e6, memory_bandwidth=800e6
        )
        rt = RealThreadRuntime(1, machine=m, pace=0.001)

        def worker(pid):
            rt.write_file("f", 1_000_000)
            rt.read_file("f", 1_000_000)

        rt.run(worker)
        assert rt.disk.cache_hits == 1  # write-back cached it; read hits
        assert rt.disk.disk_bytes == 0

    def test_paced_sleeps_overlap_across_threads(self):
        """Sleeping releases the GIL, so two processors pacing 0.2 wall
        seconds each finish in ~0.2, not ~0.4 — the mechanism the
        wall-clock benchmark's paced mode rests on (even on one core)."""
        rt = RealThreadRuntime(2, pace=0.01)

        def worker(pid):
            rt.compute(20.0)

        elapsed = rt.run(worker)
        assert elapsed < 0.35

    def test_negative_pace_rejected(self):
        with pytest.raises(ValueError, match="pace"):
            RealThreadRuntime(1, pace=-1.0)
