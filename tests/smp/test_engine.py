"""Unit and property tests for the virtual-time engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp.engine import DeadlockError, VirtualTimeEngine


class TestBasics:
    def test_single_proc_advance(self):
        eng = VirtualTimeEngine(1)

        def worker(pid):
            eng.advance(1.5)
            eng.advance(0.5)

        assert eng.run(worker) == 2.0

    def test_parallel_makespan_is_max(self):
        eng = VirtualTimeEngine(4)

        def worker(pid):
            eng.advance(float(pid + 1))

        assert eng.run(worker) == 4.0

    def test_advance_to(self):
        eng = VirtualTimeEngine(1)

        def worker(pid):
            eng.advance_to(3.0)
            eng.advance_to(1.0)  # never moves backwards

        assert eng.run(worker) == 3.0

    def test_negative_advance_rejected(self):
        eng = VirtualTimeEngine(1)
        caught = []

        def worker(pid):
            try:
                eng.advance(-1.0)
            except ValueError as e:
                caught.append(e)

        eng.run(worker)
        assert caught

    def test_current_pid(self):
        eng = VirtualTimeEngine(3)
        seen = []

        def worker(pid):
            seen.append((pid, eng.current_pid()))

        eng.run(worker)
        assert sorted(seen) == [(0, 0), (1, 1), (2, 2)]

    def test_current_pid_outside_engine(self):
        eng = VirtualTimeEngine(1)
        with pytest.raises(RuntimeError, match="not running"):
            eng.current_pid()

    def test_single_use(self):
        eng = VirtualTimeEngine(1)
        eng.run(lambda pid: None)
        with pytest.raises(RuntimeError, match="single-use"):
            eng.run(lambda pid: None)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            VirtualTimeEngine(0)


class TestOrdering:
    def test_execution_follows_virtual_time(self):
        """Events are globally ordered by virtual clock."""
        eng = VirtualTimeEngine(3)
        log = []

        def worker(pid):
            eng.advance(pid * 1.0)  # pid 0 at t=0, 1 at t=1, 2 at t=2
            log.append((eng.clock[pid], pid))
            eng.advance(10.0)
            log.append((eng.clock[pid], pid))

        eng.run(worker)
        assert log == sorted(log)

    def test_deterministic_tiebreak(self):
        """Equal clocks resolve by pid, so runs are reproducible."""
        results = []
        for _ in range(3):
            eng = VirtualTimeEngine(4)
            order = []

            def worker(pid, order=order, eng=eng):
                eng.advance(1.0)
                order.append(pid)

            eng.run(worker)
            results.append(order)
        assert results[0] == results[1] == results[2]


class TestFailures:
    def test_worker_exception_propagates(self):
        eng = VirtualTimeEngine(2)

        def worker(pid):
            if pid == 1:
                raise RuntimeError("boom")
            eng.advance(1.0)

        with pytest.raises(RuntimeError, match="boom"):
            eng.run(worker)

    def test_deadlock_detected(self):
        eng = VirtualTimeEngine(2)

        def worker(pid):
            eng.block_current()  # nobody will ever unblock us

        with pytest.raises(DeadlockError):
            eng.run(worker)

    def test_partial_deadlock_detected(self):
        """One blocked processor among finished ones is still a deadlock."""
        eng = VirtualTimeEngine(3)

        def worker(pid):
            if pid == 0:
                eng.block_current()
            else:
                eng.advance(1.0)

        with pytest.raises(DeadlockError):
            eng.run(worker)


class TestBlockUnblock:
    def test_handoff(self):
        eng = VirtualTimeEngine(2)
        woken_at = []

        def worker(pid):
            if pid == 0:
                eng.block_current()
                woken_at.append(eng.now())
            else:
                eng.advance(5.0)
                eng.unblock(0, at_time=7.0)

        eng.run(worker)
        assert woken_at == [7.0]

    def test_unblock_never_moves_clock_back(self):
        eng = VirtualTimeEngine(2)
        woken_at = []

        def worker(pid):
            if pid == 0:
                eng.advance(10.0)
                eng.block_current()
                woken_at.append(eng.now())
            else:
                eng.advance(11.0)  # pid 0 blocks first (t=10 < t=11)
                eng.unblock(0, at_time=3.0)  # in pid 0's past

        eng.run(worker)
        assert woken_at == [10.0]


@settings(max_examples=20, deadline=None)
@given(
    work=st.lists(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=5),
        min_size=1,
        max_size=6,
    )
)
def test_makespan_is_max_of_sums(work):
    """Property: with no synchronization, makespan == max per-proc total,
    and per-processor clocks advance monotonically."""
    eng = VirtualTimeEngine(len(work))
    observed = [[] for _ in work]

    def worker(pid):
        for dt in work[pid]:
            eng.advance(dt)
            observed[pid].append(eng.now())

    makespan = eng.run(worker)
    assert makespan == pytest.approx(max(sum(w) for w in work))
    for clocks in observed:
        assert clocks == sorted(clocks)
