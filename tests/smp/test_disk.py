"""Unit tests for the shared-disk and file-cache model."""

import dataclasses

import pytest

from repro.smp.disk import SharedDisk
from repro.smp.engine import VirtualTimeEngine
from repro.smp.machine import machine_a, machine_b


def run_one(machine, body):
    """Run `body(disk)` on a single virtual processor; return makespan."""
    eng = VirtualTimeEngine(1)
    disk = SharedDisk(machine, eng)
    result = {}

    def worker(pid):
        result["ret"] = body(disk)

    makespan = eng.run(worker)
    return makespan, disk, result.get("ret")


class TestMachineA:
    def test_read_charges_seek_plus_bandwidth(self):
        m = machine_a(1)
        makespan, _, _ = run_one(m, lambda d: d.read("f", 10_000_000))
        assert makespan == pytest.approx(m.disk_seek + 1.0)

    def test_sequential_read_skips_seek(self):
        m = machine_a(1)
        makespan, _, _ = run_one(
            m, lambda d: d.read("f", 10_000_000, sequential=True)
        )
        assert makespan == pytest.approx(1.0)

    def test_write_through_pays_disk(self):
        m = machine_a(1)
        makespan, disk, _ = run_one(m, lambda d: d.write("f", 10_000_000))
        assert makespan == pytest.approx(m.disk_seek + 1.0)
        assert disk.disk_bytes == 10_000_000

    def test_small_file_cached_after_write(self):
        m = machine_a(1)

        def body(d):
            d.write("small", 1_000_000)  # fits in the 8 MB cache
            return d.read("small", 1_000_000)

        _, disk, read_delay = run_one(m, body)
        assert disk.is_cached("small")
        assert read_delay == pytest.approx(m.memory_transfer_time(1_000_000))

    def test_large_file_not_cached(self):
        m = machine_a(1)

        def body(d):
            d.write("huge", 50_000_000)  # exceeds the cache entirely
            return d.read("huge", 50_000_000)

        _, disk, read_delay = run_one(m, body)
        assert not disk.is_cached("huge")
        assert read_delay > m.memory_transfer_time(50_000_000)

    def test_lru_eviction(self):
        m = machine_a(1)

        def body(d):
            d.write("a", 5_000_000)
            d.write("b", 5_000_000)  # evicts a (8 MB capacity)
            return d.is_cached("a"), d.is_cached("b")

        _, _, (a_cached, b_cached) = run_one(m, body)
        assert not a_cached and b_cached

    def test_drop_reclaims_space(self):
        m = machine_a(1)

        def body(d):
            d.write("a", 5_000_000)
            d.drop("a")
            d.write("b", 5_000_000)
            return d.is_cached("b")

        _, disk, b_cached = run_one(m, body)
        assert b_cached and not disk.is_cached("a")


class TestMachineB:
    def test_everything_cached(self):
        m = machine_b(1)

        def body(d):
            d.write("any", 100_000_000)
            return d.read("any", 100_000_000)

        _, disk, read_delay = run_one(m, body)
        assert disk.is_cached("any")
        assert read_delay == pytest.approx(
            m.memory_transfer_time(100_000_000)
        )
        assert disk.disk_bytes == 0  # write-back: nothing hit the platter

    def test_write_back_never_hits_disk(self):
        m = machine_b(1)
        _, disk, _ = run_one(m, lambda d: d.write("f", 50_000_000))
        assert disk.disk_bytes == 0

    def test_first_read_of_unwritten_file_hits_disk(self):
        m = machine_b(1)

        def body(d):
            first = d.read("cold", 10_000_000)
            second = d.read("cold", 10_000_000)
            return first, second

        _, _, (first, second) = run_one(m, body)
        assert first > second


class TestContention:
    def test_fcfs_serialization(self):
        """Concurrent requests from several processors queue on the disk."""
        m = machine_a(4)
        eng = VirtualTimeEngine(4)
        disk = SharedDisk(m, eng)

        def worker(pid):
            disk.read(f"file-{pid}", 10_000_000)  # ~1s each

        makespan = eng.run(worker)
        assert makespan == pytest.approx(4 * (m.disk_seek + 1.0), rel=0.01)

    def test_cached_reads_do_not_queue(self):
        m = machine_b(4)
        eng = VirtualTimeEngine(4)
        disk = SharedDisk(m, eng)
        for pid in range(4):
            disk._admit(f"file-{pid}", 8_000_000)

        def worker(pid):
            disk.read(f"file-{pid}", 8_000_000)  # 0.1s each, in parallel

        makespan = eng.run(worker)
        assert makespan == pytest.approx(0.1)


class TestValidation:
    def test_negative_size_rejected(self):
        m = machine_a(1)
        errors = []

        def body(d):
            try:
                d.read("f", -1)
            except ValueError as e:
                errors.append(e)

        run_one(m, body)
        assert errors

    def test_zero_size_is_free(self):
        m = machine_a(1)
        makespan, _, _ = run_one(m, lambda d: d.read("f", 0))
        assert makespan == 0.0

    def test_create_file_charges_overhead(self):
        m = machine_a(1)
        makespan, _, _ = run_one(m, lambda d: d.create_file("f"))
        assert makespan == pytest.approx(m.file_create_overhead)


def finite_writeback_machine(cache_bytes=2_000_000.0):
    """Machine B's write-back policy with a finite LRU cache — the
    configuration where deferred dirty writes actually come due."""
    return dataclasses.replace(machine_b(1), file_cache_bytes=cache_bytes)


class TestWriteBackAccounting:
    def test_dirty_eviction_charges_deferred_write(self):
        """Evicting a dirty entry pays its deferred disk write
        (regression: finite-cache write-back configs undercounted I/O)."""
        m = finite_writeback_machine()

        def body(d):
            d.write("a", 1_500_000)  # parked dirty in the cache
            d.write("b", 1_500_000)  # evicts "a" -> write-back comes due
            return None

        makespan, disk, _ = run_one(m, body)
        assert disk.writebacks == 1
        assert disk.disk_bytes == 1_500_000
        memory = 2 * m.memory_transfer_time(1_500_000)
        writeback = m.disk_seek + 1_500_000 / m.disk_bandwidth
        assert makespan == pytest.approx(memory + writeback)
        assert disk.is_cached("b") and not disk.is_cached("a")

    def test_clean_eviction_charges_nothing(self):
        m = finite_writeback_machine()

        def body(d):
            d.read("a", 1_500_000)  # cached clean (already paid its read)
            d.read("b", 1_500_000)  # evicts "a": no deferred write owed
            return None

        _, disk, _ = run_one(m, body)
        assert disk.writebacks == 0
        assert disk.disk_bytes == 3_000_000  # just the two read misses

    def test_dirty_drop_discards_deferred_write(self):
        """A dirty file deleted before eviction never pays the disk:
        exactly how Machine B's temporaries avoid the platter (§4.3)."""
        m = finite_writeback_machine()

        def body(d):
            d.write("tmp", 1_500_000)
            d.drop("tmp")
            d.write("b", 1_500_000)  # plenty of room now: no eviction
            return None

        _, disk, _ = run_one(m, body)
        assert disk.disk_bytes == 0
        assert disk.writebacks == 0
        assert disk.dirty_drops == 1

    def test_uncacheable_write_back_write_goes_to_disk(self):
        """A write-back write larger than the whole cache has nowhere to
        defer to, so it must pay the disk immediately."""
        m = finite_writeback_machine()
        makespan, disk, _ = run_one(m, lambda d: d.write("big", 3_000_000))
        assert disk.disk_bytes == 3_000_000
        assert makespan == pytest.approx(m.disk_seek + 3_000_000 / m.disk_bandwidth)
        assert not disk.is_cached("big")

    def test_rewrite_keeps_entry_dirty(self):
        """Re-admitting a dirty entry keeps the deferred write owed."""
        m = finite_writeback_machine()

        def body(d):
            d.write("a", 1_000_000)
            d.write("a", 1_500_000)  # rewrite, still dirty
            d.write("b", 1_500_000)  # evicts "a" at its new size
            return None

        _, disk, _ = run_one(m, body)
        assert disk.writebacks == 1
        assert disk.disk_bytes == 1_500_000

    def test_infinite_cache_never_writes_back(self):
        """Stock Machine B is unchanged: nothing evicts, nothing pays."""
        m = machine_b(1)

        def body(d):
            for i in range(10):
                d.write(f"f{i}", 5_000_000)
            return None

        _, disk, _ = run_one(m, body)
        assert disk.writebacks == 0
        assert disk.disk_bytes == 0
