"""Unit tests for the VirtualSMP runtime facade."""

import pytest

from repro.smp.machine import machine_a, machine_b
from repro.smp.runtime import VirtualSMP


class TestVirtualSMP:
    def test_defaults_to_machine_processors(self):
        rt = VirtualSMP(machine_a(4))
        assert rt.n_procs == 4

    def test_explicit_processor_count(self):
        rt = VirtualSMP(machine_a(4), n_procs=2)
        assert rt.n_procs == 2

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            VirtualSMP(machine_a(4), n_procs=0)

    def test_compute_accounts_busy(self):
        rt = VirtualSMP(machine_b(2), 2)

        def worker(pid):
            rt.compute(1.0 + pid)

        elapsed = rt.run(worker)
        assert elapsed == pytest.approx(2.0)
        assert rt.stats.busy == [1.0, 2.0]

    def test_io_accounts_time(self):
        m = machine_a(1)
        rt = VirtualSMP(m, 1)

        def worker(pid):
            rt.read_file("f", 10_000_000)

        rt.run(worker)
        assert rt.stats.io_time[0] == pytest.approx(m.disk_seek + 1.0)

    def test_warm_file_read_is_cheap(self):
        m = machine_b(1)
        rt = VirtualSMP(m, 1)
        rt.disk.warm("hot", 1_000_000)

        def worker(pid):
            rt.read_file("hot", 1_000_000)

        elapsed = rt.run(worker)
        assert elapsed == pytest.approx(m.memory_transfer_time(1_000_000))

    def test_drop_file(self):
        rt = VirtualSMP(machine_b(1), 1)
        rt.disk.warm("f", 100)
        rt.drop_file("f")
        assert not rt.disk.is_cached("f")

    def test_primitives_constructed_before_run(self):
        rt = VirtualSMP(machine_b(2), 2)
        lock = rt.make_lock()
        barrier = rt.make_barrier()
        cond = rt.make_condition(lock)
        hits = []

        def worker(pid):
            with lock:
                hits.append(pid)
            barrier.wait()

        rt.run(worker)
        assert sorted(hits) == [0, 1]

    def test_elapsed_recorded(self):
        rt = VirtualSMP(machine_b(1), 1)
        assert rt.elapsed is None
        rt.run(lambda pid: rt.compute(0.5))
        assert rt.elapsed == pytest.approx(0.5)

    def test_barrier_default_parties(self):
        rt = VirtualSMP(machine_b(3), 3)
        barrier = rt.make_barrier()
        assert barrier.parties == 3
