"""Unit tests for virtual-time locks, barriers and condition variables."""

import pytest

from repro.smp.engine import DeadlockError, VirtualTimeEngine
from repro.smp.sync import VBarrier, VCondition, VLock, WaitStats

OVERHEAD = 1e-6


def make(n):
    eng = VirtualTimeEngine(n)
    stats = WaitStats(n)
    return eng, stats


class TestVLock:
    def test_mutual_exclusion_in_virtual_time(self):
        """Critical sections never overlap in virtual time."""
        eng, stats = make(4)
        lock = VLock(eng, OVERHEAD, stats)
        intervals = []

        def worker(pid):
            with lock:
                start = eng.now()
                eng.advance(1.0)
                intervals.append((start, eng.now()))

        eng.run(worker)
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_fifo_by_arrival(self):
        eng, stats = make(3)
        lock = VLock(eng, OVERHEAD, stats)
        order = []

        def worker(pid):
            eng.advance(pid * 0.1)  # arrival order 0, 1, 2
            with lock:
                order.append(pid)
                eng.advance(1.0)

        eng.run(worker)
        assert order == [0, 1, 2]

    def test_lock_wait_accounted(self):
        eng, stats = make(2)
        lock = VLock(eng, OVERHEAD, stats)

        def worker(pid):
            with lock:
                eng.advance(1.0)

        eng.run(worker)
        assert sum(stats.lock_wait) == pytest.approx(1.0, abs=0.01)

    def test_reentrant_acquire_rejected(self):
        eng, stats = make(1)
        lock = VLock(eng, OVERHEAD, stats)
        errors = []

        def worker(pid):
            lock.acquire()
            try:
                lock.acquire()
            except RuntimeError as e:
                errors.append(e)
            lock.release()

        eng.run(worker)
        assert errors

    def test_release_by_non_holder_rejected(self):
        eng, stats = make(1)
        lock = VLock(eng, OVERHEAD, stats)
        errors = []

        def worker(pid):
            try:
                lock.release()
            except RuntimeError as e:
                errors.append(e)

        eng.run(worker)
        assert errors


class TestVBarrier:
    def test_all_released_at_max_arrival(self):
        eng, stats = make(4)
        barrier = VBarrier(eng, 4, OVERHEAD, stats)
        release_times = {}

        def worker(pid):
            eng.advance(pid * 1.0)
            barrier.wait()
            release_times[pid] = eng.now()

        eng.run(worker)
        assert len(set(release_times.values())) == 1
        assert list(release_times.values())[0] >= 3.0

    def test_reusable_across_phases(self):
        eng, stats = make(3)
        barrier = VBarrier(eng, 3, OVERHEAD, stats)
        checkpoints = []

        def worker(pid):
            for phase in range(3):
                eng.advance(0.5 * (pid + 1))
                barrier.wait()
                checkpoints.append((phase, eng.now()))

        eng.run(worker)
        by_phase = {}
        for phase, t in checkpoints:
            by_phase.setdefault(phase, set()).add(t)
        for phase, times in by_phase.items():
            assert len(times) == 1, f"phase {phase} not synchronized"

    def test_wait_time_accounted(self):
        eng, stats = make(2)
        barrier = VBarrier(eng, 2, OVERHEAD, stats)

        def worker(pid):
            eng.advance(pid * 2.0)  # pid 0 waits ~2s for pid 1
            barrier.wait()

        eng.run(worker)
        assert stats.barrier_wait[0] == pytest.approx(2.0, abs=0.01)
        assert stats.barrier_wait[1] == 0.0

    def test_reentry_rejected(self):
        eng, stats = make(2)
        barrier = VBarrier(eng, 3, OVERHEAD, stats)  # never fills
        errors = []

        def worker(pid):
            if pid == 0:
                barrier.wait()
            else:
                eng.advance(1.0)
                try:
                    barrier._arrived.append(pid)  # simulate re-entry state
                    barrier.wait()
                except RuntimeError as e:
                    errors.append(e)
                    barrier._arrived.remove(pid)
                    raise

        with pytest.raises(RuntimeError):
            eng.run(worker)
        assert errors

    def test_parties_validated(self):
        eng, stats = make(1)
        with pytest.raises(ValueError, match="parties"):
            VBarrier(eng, 0, OVERHEAD, stats)


class TestVCondition:
    def test_wait_signal(self):
        eng, stats = make(2)
        lock = VLock(eng, OVERHEAD, stats)
        cond = VCondition(eng, lock, OVERHEAD, stats)
        state = {"ready": False}
        woken = []

        def worker(pid):
            if pid == 0:
                with lock:
                    while not state["ready"]:
                        cond.wait()
                woken.append(eng.now())
            else:
                eng.advance(3.0)
                with lock:
                    state["ready"] = True
                    cond.signal()

        eng.run(worker)
        assert woken and woken[0] >= 3.0

    def test_broadcast_wakes_all(self):
        eng, stats = make(4)
        lock = VLock(eng, OVERHEAD, stats)
        cond = VCondition(eng, lock, OVERHEAD, stats)
        state = {"go": False}
        woken = []

        def worker(pid):
            if pid == 0:
                eng.advance(1.0)
                with lock:
                    state["go"] = True
                    cond.broadcast()
            else:
                with lock:
                    while not state["go"]:
                        cond.wait()
                woken.append(pid)

        eng.run(worker)
        assert sorted(woken) == [1, 2, 3]

    def test_signal_with_no_waiters_is_noop(self):
        eng, stats = make(1)
        lock = VLock(eng, OVERHEAD, stats)
        cond = VCondition(eng, lock, OVERHEAD, stats)

        def worker(pid):
            with lock:
                cond.signal()
                cond.broadcast()

        eng.run(worker)  # must not raise or deadlock

    def test_wait_without_lock_rejected(self):
        eng, stats = make(1)
        lock = VLock(eng, OVERHEAD, stats)
        cond = VCondition(eng, lock, OVERHEAD, stats)
        errors = []

        def worker(pid):
            try:
                cond.wait()
            except RuntimeError as e:
                errors.append(e)

        eng.run(worker)
        assert errors

    def test_lost_wakeup_becomes_deadlock(self):
        """A waiter that misses every signal deadlocks loudly, not silently."""
        eng, stats = make(2)
        lock = VLock(eng, OVERHEAD, stats)
        cond = VCondition(eng, lock, OVERHEAD, stats)

        def worker(pid):
            if pid == 0:
                eng.advance(1.0)
                with lock:
                    cond.wait()  # signal already happened
            else:
                with lock:
                    cond.signal()  # nobody waiting yet

        with pytest.raises(DeadlockError):
            eng.run(worker)


class TestWaitStatsTracerMirroring:
    def test_add_wait_mirrors_to_tracer(self):
        from repro.smp.trace import Interval, Tracer

        stats = WaitStats(2)
        stats.tracer = Tracer()
        stats.add_wait("lock", 0, 1.0, 2.0)
        stats.add_wait("barrier", 1, 2.0, 3.5)
        stats.add_wait("cond", 0, 4.0, 4.5)
        assert stats.lock_wait[0] == 1.0
        assert stats.barrier_wait[1] == 1.5
        assert stats.tracer.intervals == [
            Interval(0, "lock", 1.0, 2.0),
            Interval(1, "barrier", 2.0, 3.5),
            Interval(0, "cond", 4.0, 4.5),
        ]

    def test_no_tracer_still_accounts(self):
        stats = WaitStats(1)
        stats.add_wait("lock", 0, 0.0, 1.0)
        assert stats.tracer is None
        assert stats.lock_wait[0] == 1.0

    def test_primitive_waits_flow_through_to_tracer(self):
        """End to end: a contended VLock produces a traced lock interval."""
        from repro.smp.trace import Tracer

        eng, stats = make(2)
        stats.tracer = Tracer()
        lock = VLock(eng, OVERHEAD, stats)

        def worker(pid):
            with lock:
                eng.advance(1.0)

        eng.run(worker)
        traced = [iv for iv in stats.tracer.intervals if iv.kind == "lock"]
        assert len(traced) == 1
        assert traced[0].duration == pytest.approx(stats.total("lock_wait"))
