"""Randomized stress tests for the virtual-time engine.

Hypothesis generates random-but-well-formed concurrent programs (mixes
of compute, critical sections, shared I/O and barrier rounds) and checks
the global invariants: no deadlock, deterministic replay, monotone
clocks, mutually exclusive critical sections, and makespan bounded by
[max per-proc work, total work + overheads].
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smp.machine import machine_a
from repro.smp.runtime import VirtualSMP

# One program step per processor: (kind, size)
step = st.tuples(
    st.sampled_from(["compute", "critical", "io"]),
    st.floats(0.001, 0.5),
)
program = st.lists(step, min_size=0, max_size=8)


@settings(max_examples=40, deadline=None)
@given(
    programs=st.lists(program, min_size=1, max_size=5),
    n_barriers=st.integers(0, 3),
)
def test_random_programs_terminate_and_replay(programs, n_barriers):
    n_procs = len(programs)

    def run_once():
        rt = VirtualSMP(machine_a(n_procs), n_procs)
        lock = rt.make_lock()
        barrier = rt.make_barrier()
        sections = []

        def worker(pid):
            for kind, size in programs[pid]:
                if kind == "compute":
                    rt.compute(size)
                elif kind == "critical":
                    with lock:
                        start = rt.now()
                        rt.compute(size)
                        sections.append((start, rt.now()))
                else:
                    rt.read_file(f"file-{pid}", int(size * 1e6))
            for _ in range(n_barriers):
                barrier.wait()

        makespan = rt.run(worker)
        return makespan, sorted(sections)

    makespan1, sections1 = run_once()
    makespan2, sections2 = run_once()

    # Deterministic replay.
    assert makespan1 == makespan2
    assert sections1 == sections2

    # Critical sections never overlap in virtual time.
    for (s1, e1), (s2, e2) in zip(sections1, sections1[1:]):
        assert e1 <= s2 + 1e-12

    # Makespan is at least the busiest processor's compute demand.
    per_proc = [
        sum(size for kind, size in prog if kind in ("compute", "critical"))
        for prog in programs
    ]
    assert makespan1 >= max(per_proc) - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    works=st.lists(st.floats(0.0, 2.0), min_size=2, max_size=6),
    rounds=st.integers(1, 4),
)
def test_barrier_rounds_synchronize(works, rounds):
    """After every barrier round, all clocks agree; the makespan equals
    the sum over rounds of the slowest processor's work."""
    n_procs = len(works)
    rt = VirtualSMP(machine_a(n_procs), n_procs)
    barrier = rt.make_barrier()
    round_times = [[] for _ in range(rounds)]

    def worker(pid):
        for r in range(rounds):
            rt.compute(works[pid])
            barrier.wait()
            round_times[r].append(rt.now())

    makespan = rt.run(worker)
    for times in round_times:
        assert len(set(times)) == 1
    overhead = rounds * rt.machine.barrier_overhead
    expected = rounds * max(works) + overhead
    assert abs(makespan - expected) < 1e-9


@settings(max_examples=25, deadline=None)
@given(
    n_procs=st.integers(2, 6),
    increments=st.integers(1, 30),
)
def test_lock_counter_exact(n_procs, increments):
    """A lock-protected counter always lands on the exact total."""
    rt = VirtualSMP(machine_a(n_procs), n_procs)
    lock = rt.make_lock()
    box = {"count": 0}

    def worker(pid):
        for _ in range(increments):
            with lock:
                rt.compute(0.001)
                box["count"] += 1

    rt.run(worker)
    assert box["count"] == n_procs * increments
