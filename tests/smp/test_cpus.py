"""Affinity-aware worker sizing (``available_cpus``) and its callers."""

from __future__ import annotations

import os

from repro.smp.cpus import available_cpus
from repro.smp.threads import RealThreadRuntime


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1

    def test_matches_affinity_mask(self):
        if hasattr(os, "sched_getaffinity"):
            assert available_cpus() == max(1, len(os.sched_getaffinity(0)))
        else:
            assert available_cpus() == max(1, os.cpu_count() or 1)


class TestCallers:
    def test_thread_runtime_defaults_to_affinity(self):
        assert RealThreadRuntime(None).n_procs == available_cpus()
        assert RealThreadRuntime(0).n_procs == available_cpus()

    def test_thread_runtime_explicit_wins(self):
        assert RealThreadRuntime(3).n_procs == 3

    def test_inference_engine_defaults_to_affinity(self, small_f2):
        from repro.classify.engine import InferenceEngine
        from repro.core.builder import build_classifier

        tree = build_classifier(small_f2, algorithm="serial").tree
        engine = InferenceEngine(tree, n_workers=0)
        assert engine.n_workers == available_cpus()
        engine.close()

    def test_shard_default_is_affinity(self, small_f2):
        from repro.core.builder import build_classifier
        from repro.shard.pool import shutdown_pools

        res = build_classifier(small_f2, runtime="procs")
        assert res.shard.shards == available_cpus()
        shutdown_pools()
