"""Affinity-aware worker sizing (``available_cpus``) and its callers."""

from __future__ import annotations

import os

import pytest

from repro.smp.cpus import (
    available_cpus,
    cgroup_quota_cpus,
    env_thread_override,
)
from repro.smp.threads import RealThreadRuntime


class TestAvailableCpus:
    def test_positive(self):
        assert available_cpus() >= 1

    def test_matches_affinity_mask(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
        if hasattr(os, "sched_getaffinity"):
            affinity = max(1, len(os.sched_getaffinity(0)))
        else:
            affinity = max(1, os.cpu_count() or 1)
        quota = cgroup_quota_cpus()
        expect = affinity if quota is None else min(affinity, quota)
        assert available_cpus() == max(1, expect)

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "7")
        assert available_cpus() == 7

    @pytest.mark.parametrize("raw", ["0", "-3", "four", ""])
    def test_env_override_ignores_nonpositive_and_garbage(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        assert env_thread_override() is None
        assert available_cpus() >= 1

    def test_env_thread_override_parses(self):
        assert env_thread_override({"REPRO_NATIVE_THREADS": "4"}) == 4
        assert env_thread_override({"REPRO_NATIVE_THREADS": "0"}) is None
        assert env_thread_override({"REPRO_NATIVE_THREADS": "x"}) is None
        assert env_thread_override({}) is None


class TestCgroupQuota:
    def test_v2_limited(self, tmp_path):
        (tmp_path / "cpu.max").write_text("150000 100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) == 2  # ceil(1.5)

    def test_v2_exact(self, tmp_path):
        (tmp_path / "cpu.max").write_text("400000 100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) == 4

    def test_v2_unlimited(self, tmp_path):
        (tmp_path / "cpu.max").write_text("max 100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) is None

    def test_v2_fractional_floors_at_one(self, tmp_path):
        (tmp_path / "cpu.max").write_text("50000 100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) == 1

    def test_v1_limited(self, tmp_path):
        cpu = tmp_path / "cpu"
        cpu.mkdir()
        (cpu / "cpu.cfs_quota_us").write_text("250000\n")
        (cpu / "cpu.cfs_period_us").write_text("100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) == 3  # ceil(2.5)

    def test_v1_unlimited(self, tmp_path):
        cpu = tmp_path / "cpu"
        cpu.mkdir()
        (cpu / "cpu.cfs_quota_us").write_text("-1\n")
        (cpu / "cpu.cfs_period_us").write_text("100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) is None

    def test_no_cgroup_files(self, tmp_path):
        assert cgroup_quota_cpus(str(tmp_path)) is None

    def test_v2_beats_v1(self, tmp_path):
        # A v2 "unlimited" must not fall through to a stale v1 quota.
        (tmp_path / "cpu.max").write_text("max 100000\n")
        cpu = tmp_path / "cpu"
        cpu.mkdir()
        (cpu / "cpu.cfs_quota_us").write_text("100000\n")
        (cpu / "cpu.cfs_period_us").write_text("100000\n")
        assert cgroup_quota_cpus(str(tmp_path)) is None


class TestCallers:
    def test_thread_runtime_defaults_to_affinity(self):
        assert RealThreadRuntime(None).n_procs == available_cpus()
        assert RealThreadRuntime(0).n_procs == available_cpus()

    def test_thread_runtime_explicit_wins(self):
        assert RealThreadRuntime(3).n_procs == 3

    def test_inference_engine_defaults_to_affinity(self, small_f2):
        from repro.classify.engine import InferenceEngine
        from repro.core.builder import build_classifier

        tree = build_classifier(small_f2, algorithm="serial").tree
        engine = InferenceEngine(tree, n_workers=0)
        assert engine.n_workers == available_cpus()
        engine.close()

    def test_shard_default_is_affinity(self, small_f2):
        from repro.core.builder import build_classifier
        from repro.shard.pool import shutdown_pools

        res = build_classifier(small_f2, runtime="procs")
        assert res.shard.shards == available_cpus()
        shutdown_pools()
