"""Real-thread stress tests for the schemes' synchronization.

The virtual engine runs exactly one thread at a time, so it cannot
surface races that need true preemption.  These tests hammer the two
most synchronization-heavy schemes on the real-thread runtime — MWK's
per-leaf condition-variable gating and SUBTREE's group dissolve/FREE
queue — across repeated seeds and processor counts, asserting the tree
is bit-identical to the virtual-time build every time.
"""

import pytest

from repro.core.builder import build_classifier
from repro.core.params import BuildParams
from repro.core.serialize import _node_to_dict
from repro.data.generator import DatasetSpec, generate_dataset

PROCS = (2, 4, 8)
SEEDS = (101, 102, 103, 104, 105)


def _make_dataset(seed):
    # Function 7 grows deep trees with many simultaneous leaves, which
    # maximizes window-slot contention (MWK) and regrouping (SUBTREE).
    return generate_dataset(
        DatasetSpec(function=7, n_attributes=9, n_records=500, seed=seed)
    )


@pytest.fixture(scope="module")
def references():
    """Per-seed virtual-time reference trees (scheme-independent)."""
    refs = {}
    for seed in SEEDS:
        ds = _make_dataset(seed)
        result = build_classifier(ds, algorithm="serial", runtime="virtual")
        refs[seed] = (ds, _node_to_dict(result.tree.root))
    return refs


class TestMwkGatingUnderPreemption:
    """MWK's W_i-before-S_i-before-W_{i+K} condition chain."""

    @pytest.mark.parametrize("procs", PROCS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tree_matches_virtual(self, references, seed, procs):
        ds, ref = references[seed]
        result = build_classifier(
            ds, algorithm="mwk", n_procs=procs, runtime="threads"
        )
        assert _node_to_dict(result.tree.root) == ref

    @pytest.mark.parametrize("procs", (2, 4))
    def test_small_window_max_pressure(self, references, procs):
        # window=2 keeps every slot's predecessor gate hot.
        ds, ref = references[SEEDS[0]]
        for _ in range(3):
            result = build_classifier(
                ds,
                algorithm="mwk",
                n_procs=procs,
                runtime="threads",
                params=BuildParams(window=2),
            )
            assert _node_to_dict(result.tree.root) == ref


class TestSubtreeDissolveUnderPreemption:
    """SUBTREE's group barriers, FREE queue and master regrouping."""

    @pytest.mark.parametrize("procs", PROCS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tree_matches_virtual(self, references, seed, procs):
        ds, ref = references[seed]
        result = build_classifier(
            ds, algorithm="subtree", n_procs=procs, runtime="threads"
        )
        assert _node_to_dict(result.tree.root) == ref

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_repeated_runs_stay_deterministic(self, references, seed):
        ds, ref = references[seed]
        for _ in range(3):
            result = build_classifier(
                ds, algorithm="subtree", n_procs=8, runtime="threads"
            )
            assert _node_to_dict(result.tree.root) == ref


class TestPacedStress:
    """The paced replay adds sleeps at every charge point, shifting the
    interleavings; trees must not care."""

    @pytest.mark.parametrize("algorithm", ("mwk", "subtree"))
    def test_paced_tree_matches_virtual(self, references, algorithm):
        ds, ref = references[SEEDS[0]]
        result = build_classifier(
            ds, algorithm=algorithm, n_procs=4, runtime="threads", pace=1e-4
        )
        assert _node_to_dict(result.tree.root) == ref
