"""Unit tests for the machine cost models."""

import dataclasses
import math

import pytest

from repro.smp.machine import MachineConfig, machine_a, machine_b


class TestFactories:
    def test_machine_a_defaults(self):
        m = machine_a()
        assert m.n_processors == 4
        assert m.write_through
        assert not m.files_cached
        assert math.isfinite(m.file_cache_bytes)

    def test_machine_b_defaults(self):
        m = machine_b()
        assert m.n_processors == 8
        assert m.files_cached
        assert not m.write_through

    def test_custom_processor_counts(self):
        assert machine_a(2).n_processors == 2
        assert machine_b(16).n_processors == 16

    def test_with_processors(self):
        m = machine_a(4).with_processors(2)
        assert m.n_processors == 2
        assert m.name == "machine-a"


class TestValidation:
    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError, match="processor"):
            MachineConfig(name="x", n_processors=0)

    def test_nonpositive_cpu_cost_rejected(self):
        with pytest.raises(ValueError, match="cpu_eval_record"):
            MachineConfig(name="x", n_processors=1, cpu_eval_record=0.0)

    def test_negative_seek_rejected(self):
        with pytest.raises(ValueError, match="seek"):
            MachineConfig(name="x", n_processors=1, disk_seek=-1.0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError, match="file_cache_bytes"):
            MachineConfig(name="x", n_processors=1, file_cache_bytes=-1.0)


class TestDerived:
    def test_disk_transfer_time(self):
        m = machine_a(1)
        t = m.disk_transfer_time(int(m.disk_bandwidth))
        assert t == pytest.approx(m.disk_seek + 1.0)

    def test_memory_transfer_time(self):
        m = machine_b(1)
        assert m.memory_transfer_time(int(m.memory_bandwidth)) == pytest.approx(1.0)

    def test_frozen(self):
        m = machine_a(1)
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.disk_seek = 0.0

    def test_cpu_cost_ordering(self):
        """Split work costs more per record than probe building (it adds
        the hash lookup and the write), as the paper's step breakdown
        implies."""
        m = machine_a(1)
        assert m.cpu_split_record > m.cpu_probe_record
