"""Unit tests for execution tracing and timeline rendering."""

import pytest

from repro.smp.machine import machine_a, machine_b
from repro.smp.runtime import VirtualSMP
from repro.smp.trace import Interval, Tracer, render_timeline, utilization_table


class TestTracer:
    def test_records_intervals(self):
        t = Tracer()
        t.record(0, "busy", 0.0, 1.0)
        t.record(1, "io", 0.5, 2.0)
        assert len(t.intervals) == 2
        assert t.makespan == 2.0

    def test_zero_length_dropped(self):
        t = Tracer()
        t.record(0, "busy", 1.0, 1.0)
        assert t.intervals == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Tracer().record(0, "sleep", 0.0, 1.0)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="ends before"):
            Tracer().record(0, "busy", 2.0, 1.0)

    def test_utilization(self):
        t = Tracer()
        t.record(0, "busy", 0.0, 3.0)
        t.record(0, "io", 3.0, 4.0)
        t.record(1, "busy", 0.0, 1.0)
        util = t.utilization()
        assert util[0]["busy"] == 3.0
        assert util[0]["io"] == 1.0
        assert util[0]["idle"] == 0.0
        assert util[1]["idle"] == pytest.approx(3.0)


class TestRuntimeIntegration:
    def test_compute_and_io_traced(self):
        tracer = Tracer()
        rt = VirtualSMP(machine_a(2), 2, tracer=tracer)

        def worker(pid):
            rt.compute(1.0)
            rt.read_file(f"f{pid}", 1_000_000)

        rt.run(worker)
        kinds = {iv.kind for iv in tracer.intervals}
        assert kinds == {"busy", "io"}
        busy_total = sum(
            iv.duration for iv in tracer.intervals if iv.kind == "busy"
        )
        assert busy_total == pytest.approx(2.0)

    def test_waits_traced(self):
        tracer = Tracer()
        rt = VirtualSMP(machine_b(2), 2, tracer=tracer)
        lock = rt.make_lock()
        barrier = rt.make_barrier()

        def worker(pid):
            with lock:
                rt.compute(1.0)
            barrier.wait()

        rt.run(worker)
        kinds = {iv.kind for iv in tracer.intervals}
        assert "lock" in kinds and "barrier" in kinds

    def test_trace_totals_match_stats(self, small_f2):
        from repro.core.builder import build_classifier

        tracer = Tracer()
        rt = VirtualSMP(machine_b(3), 3, tracer=tracer)
        build_classifier(small_f2, algorithm="mwk", runtime=rt, n_procs=3)
        traced_busy = sum(
            iv.duration for iv in tracer.intervals if iv.kind == "busy"
        )
        assert traced_busy == pytest.approx(sum(rt.stats.busy))
        traced_barrier = sum(
            iv.duration for iv in tracer.intervals if iv.kind == "barrier"
        )
        assert traced_barrier == pytest.approx(
            sum(rt.stats.barrier_wait), abs=1e-9
        )


class TestRendering:
    def make_trace(self):
        t = Tracer()
        t.record(0, "busy", 0.0, 5.0)
        t.record(1, "barrier", 0.0, 2.0)
        t.record(1, "busy", 2.0, 5.0)
        return t

    def test_timeline_lanes(self):
        text = render_timeline(self.make_trace(), width=10)
        lines = text.splitlines()
        assert lines[0].startswith("P0")
        assert lines[1].startswith("P1")
        assert "#" in lines[0]
        assert "B" in lines[1]
        assert "legend" in text

    def test_empty_trace(self):
        assert render_timeline(Tracer()) == "(empty trace)"

    def test_scale_line_keeps_end_label_at_tiny_width(self):
        # The dash count underflowed for widths smaller than the label;
        # it must clamp to zero and still print the makespan.
        for width in (1, 2, 5, 8):
            text = render_timeline(self.make_trace(), width=width)
            scale = text.splitlines()[2]
            assert scale.startswith("0 ")
            assert scale.rstrip().endswith("5.00s")

    def test_scale_line_dashes_at_normal_width(self):
        scale = render_timeline(self.make_trace(), width=40).splitlines()[2]
        assert "-" in scale and scale.rstrip().endswith("5.00s")

    def test_utilization_table(self):
        text = utilization_table(self.make_trace())
        assert "P0" in text and "P1" in text and "busy" in text

    def test_utilization_table_values_and_idle(self):
        lines = utilization_table(self.make_trace()).splitlines()
        assert len(lines) == 2
        p1 = lines[1]
        assert p1.startswith("P1")
        assert "barrier   2.00s" in p1
        assert "busy     3.00s" in p1
        assert "idle   0.00s" in p1

    def test_utilization_table_empty(self):
        assert utilization_table(Tracer()) == ""
